use crate::{ClickLog, World};
use std::collections::HashSet;
use taxo_core::ConceptId;
use taxo_text::{tokenize, ConceptMatcher};

/// One indexed item document.
#[derive(Debug, Clone)]
pub struct Doc {
    pub text: String,
    /// The concept the item actually is (via longest-match identification),
    /// if any — used only by the relevance oracle, never by ranking.
    pub concept: Option<ConceptId>,
    /// Total clicks this item received (popularity fallback ranking).
    pub popularity: u64,
}

/// A deliberately naive token-overlap search engine over item documents,
/// standing in for the Meituan take-out search engine in the offline
/// query-rewriting user study (Section IV-E).
///
/// Ranking is plain token overlap, so it shares the real engine's failure
/// mode the study exploits: "search engines do not recognise and
/// understand most fine-grained concepts" — a fine-grained query only
/// matches items that repeat its exact rare tokens, while rewriting the
/// query with its hypernym recalls the category's items.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    docs: Vec<Doc>,
}

impl SearchEngine {
    /// Indexes every distinct item string of a click log, accumulating
    /// click counts as document popularity.
    pub fn from_click_log(world: &World, log: &ClickLog) -> Self {
        let matcher = ConceptMatcher::new(&world.vocab);
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut docs: Vec<Doc> = Vec::new();
        for r in &log.records {
            match index.get(&r.item_text) {
                Some(&i) => docs[i].popularity += r.count,
                None => {
                    index.insert(r.item_text.clone(), docs.len());
                    docs.push(Doc {
                        concept: matcher.identify(&r.item_text),
                        text: r.item_text.clone(),
                        popularity: r.count,
                    });
                }
            }
        }
        SearchEngine { docs }
    }

    /// Indexes an explicit document list.
    pub fn from_docs(docs: Vec<Doc>) -> Self {
        SearchEngine { docs }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Top-`k` documents by token overlap with `query` (ties broken by
    /// index order for determinism). Documents with zero overlap are
    /// never returned.
    pub fn search(&self, query: &str, k: usize) -> Vec<&Doc> {
        let q_tokens: HashSet<&str> = tokenize(query).into_iter().collect();
        if q_tokens.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(usize, usize)> = self
            .docs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| {
                let overlap = tokenize(&d.text)
                    .into_iter()
                    .collect::<HashSet<_>>()
                    .intersection(&q_tokens)
                    .count();
                (overlap > 0).then_some((overlap, i))
            })
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored
            .into_iter()
            .take(k)
            .map(|(_, i)| &self.docs[i])
            .collect()
    }

    /// Like [`SearchEngine::search`], but always returns `k` results when
    /// the index has them: positions the query cannot fill are padded with
    /// globally popular items, the way production engines avoid empty
    /// result pages. This is what makes unrecognised fine-grained queries
    /// imprecise (Section IV-E).
    pub fn search_or_popular(&self, query: &str, k: usize) -> Vec<&Doc> {
        let mut hits = self.search(query, k);
        if hits.len() < k {
            let chosen: HashSet<*const Doc> = hits.iter().map(|d| *d as *const Doc).collect();
            let mut rest: Vec<&Doc> = self
                .docs
                .iter()
                .filter(|d| !chosen.contains(&(*d as *const Doc)))
                .collect();
            rest.sort_by(|a, b| b.popularity.cmp(&a.popularity).then(a.text.cmp(&b.text)));
            hits.extend(rest.into_iter().take(k - hits.len()));
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClickConfig, WorldConfig};

    #[test]
    fn indexes_distinct_items() {
        let world = World::generate(&WorldConfig::tiny(5));
        let log = ClickLog::generate(&world, &ClickConfig::tiny(5));
        let engine = SearchEngine::from_click_log(&world, &log);
        assert!(!engine.is_empty());
        assert!(engine.len() <= log.distinct_pairs());
    }

    #[test]
    fn overlap_ranking_prefers_more_shared_tokens() {
        let engine = SearchEngine::from_docs(vec![
            Doc {
                text: "fresh rye breado pack".into(),
                concept: None,
                popularity: 5,
            },
            Doc {
                text: "rye crackers".into(),
                concept: None,
                popularity: 3,
            },
            Doc {
                text: "unrelated thing".into(),
                concept: None,
                popularity: 99,
            },
        ]);
        let hits = engine.search("rye breado", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].text, "fresh rye breado pack");
        assert_eq!(hits[1].text, "rye crackers");
    }

    #[test]
    fn zero_overlap_returns_nothing() {
        let engine = SearchEngine::from_docs(vec![Doc {
            text: "abc def".into(),
            concept: None,
            popularity: 1,
        }]);
        assert!(engine.search("xyz", 5).is_empty());
        assert!(engine.search("", 5).is_empty());
    }

    #[test]
    fn popular_padding_fills_k() {
        let engine = SearchEngine::from_docs(vec![
            Doc {
                text: "toasti snack".into(),
                concept: None,
                popularity: 1,
            },
            Doc {
                text: "megahit item".into(),
                concept: None,
                popularity: 100,
            },
            Doc {
                text: "minor item".into(),
                concept: None,
                popularity: 2,
            },
        ]);
        let hits = engine.search_or_popular("toasti", 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].text, "toasti snack");
        assert_eq!(hits[1].text, "megahit item", "padded by popularity");
    }

    #[test]
    fn k_caps_results() {
        let docs = (0..20)
            .map(|i| Doc {
                text: format!("breado item{i}"),
                concept: None,
                popularity: i,
            })
            .collect();
        let engine = SearchEngine::from_docs(docs);
        assert_eq!(engine.search("breado", 10).len(), 10);
    }
}
