use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::HashSet;

const CONSONANTS: &[&str] = &[
    "b", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "sh",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u"];

/// Generates unique pseudo-words for the synthetic product language.
///
/// The real data is Chinese product vocabulary; the stand-in is a
/// syllabic pseudo-language ("breado", "melonix"-like words) chosen so
/// that (i) tokenisation is trivial, (ii) the head-final naming convention
/// of product names ("rye breado" IsA "breado") can be reproduced exactly,
/// and (iii) no word is accidentally a substring of another (which would
/// contaminate the `Substr` baseline and headword analysis with unintended
/// matches).
#[derive(Debug)]
pub struct WordFactory {
    issued: HashSet<String>,
}

impl Default for WordFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl WordFactory {
    pub fn new() -> Self {
        WordFactory {
            issued: HashSet::new(),
        }
    }

    /// Draws one fresh word of `syllables` syllables that is neither a
    /// substring nor a superstring of any previously issued word.
    pub fn fresh_word(&mut self, syllables: usize, rng: &mut StdRng) -> String {
        loop {
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(CONSONANTS[rng.random_range(0..CONSONANTS.len())]);
                w.push_str(VOWELS[rng.random_range(0..VOWELS.len())]);
            }
            if self.issued.contains(&w) {
                continue;
            }
            if self
                .issued
                .iter()
                .any(|old| old.contains(&w) || w.contains(old.as_str()))
            {
                continue;
            }
            self.issued.insert(w.clone());
            return w;
        }
    }

    /// A fresh 2–3 syllable word.
    pub fn word(&mut self, rng: &mut StdRng) -> String {
        let s = rng.random_range(2..=3);
        self.fresh_word(s, rng)
    }

    /// Number of words issued so far.
    pub fn issued(&self) -> usize {
        self.issued.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_unique_and_substring_free() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut f = WordFactory::new();
        let words: Vec<String> = (0..300).map(|_| f.word(&mut rng)).collect();
        let set: HashSet<_> = words.iter().collect();
        assert_eq!(set.len(), words.len());
        for a in &words {
            for b in &words {
                if a != b {
                    assert!(!a.contains(b.as_str()), "{a} contains {b}");
                }
            }
        }
    }

    #[test]
    fn words_are_pronounceable_ascii() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut f = WordFactory::new();
        for _ in 0..50 {
            let w = f.word(&mut rng);
            assert!(w.is_ascii());
            assert!(w.len() >= 4, "word too short: {w}");
            assert!(!w.contains(' '));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut f = WordFactory::new();
            (0..20).map(|_| f.word(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }
}
