use crate::{lexicon::WordFactory, WorldConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use taxo_core::{ConceptId, Taxonomy, Vocabulary};
use taxo_text::is_headword_edge;

/// A fully generated synthetic product domain: the ground-truth taxonomy,
/// the *existing* (incomplete) taxonomy the expander starts from, the
/// clean concept vocabulary, and the withheld new concepts.
///
/// This is the substitution for the Meituan Gourmet Food taxonomy: the
/// distributional properties the paper's experiments depend on — headword
/// skew (Table II), depth, new-concept supply (Table I), multi-parent
/// nodes — are explicit, controlled parameters of [`WorldConfig`].
#[derive(Debug, Clone)]
pub struct World {
    pub config: WorldConfig,
    /// The clean concept vocabulary `C` (Definition 2): every concept,
    /// in the existing taxonomy or new.
    pub vocab: Vocabulary,
    /// The complete ground-truth taxonomy (never shown to models).
    pub truth: Taxonomy,
    /// The existing taxonomy `T⁰` (ground truth minus the new concepts).
    pub existing: Taxonomy,
    /// Concepts in the vocabulary but missing from `T⁰` — the expansion
    /// targets.
    pub new_concepts: Vec<ConceptId>,
    /// "Common but non-sense" concepts that users click under every query
    /// (the "Sweet Soup" noise source).
    pub common: Vec<ConceptId>,
    /// Top-level category concepts.
    pub roots: Vec<ConceptId>,
    /// Non-concept filler words used to decorate clicked item strings
    /// ("Well-known … - 6 in a bag"); guaranteed disjoint from every
    /// concept token.
    pub decorations: Vec<String>,
}

impl World {
    /// Generates a world from `cfg` (deterministic in `cfg.seed`).
    pub fn generate(cfg: &WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut factory = WordFactory::new();
        let mut vocab = Vocabulary::new();
        let mut truth = Taxonomy::new();
        // (node, depth) pairs; depth of roots is 1.
        let mut depth_of: Vec<(ConceptId, usize)> = Vec::new();

        let mut roots = Vec::with_capacity(cfg.n_roots);
        for _ in 0..cfg.n_roots {
            let id = vocab.intern(&factory.word(&mut rng));
            truth.add_node(id);
            depth_of.push((id, 1));
            roots.push(id);
        }

        // Frontier expansion, biased towards shallow nodes so the tree
        // fills out breadth-first but still reaches max_depth.
        let mut expandable: Vec<(ConceptId, usize)> = depth_of.clone();
        while truth.node_count() < cfg.target_nodes && !expandable.is_empty() {
            // Weight ∝ 1/depth: shallow nodes expand more often.
            let weights: Vec<f64> = expandable.iter().map(|&(_, d)| 1.0 / d as f64).collect();
            let total: f64 = weights.iter().sum();
            let mut pick = rng.random_range(0.0..total);
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
            }
            let (parent, d) = expandable.swap_remove(idx);
            let n_children = 1 + rng
                .random_range(0..(cfg.mean_children * 2.0) as usize)
                .max(1);
            for _ in 0..n_children {
                if truth.node_count() >= cfg.target_nodes {
                    break;
                }
                let child = Self::make_child(
                    parent,
                    cfg.headword_ratio,
                    &mut vocab,
                    &mut factory,
                    &mut rng,
                );
                if truth.add_edge(parent, child).is_ok() {
                    depth_of.push((child, d + 1));
                    if d + 1 < cfg.max_depth {
                        expandable.push((child, d + 1));
                    }
                }
            }
        }

        // Force one headword chain down to max_depth so |D| matches the
        // preset (the frontier heuristic alone rarely reaches it).
        if let Some(&(mut deepest, mut dd)) = depth_of.iter().max_by_key(|&&(_, d)| d) {
            while dd < cfg.max_depth {
                let child = Self::make_child(deepest, 1.0, &mut vocab, &mut factory, &mut rng);
                truth
                    .add_edge(deepest, child)
                    .expect("fresh child cannot collide");
                depth_of.push((child, dd + 1));
                deepest = child;
                dd += 1;
            }
        }

        // Common concepts live under a root ("Sweet Soup" IsA "Dessert").
        let mut common = Vec::with_capacity(cfg.n_common_concepts);
        for k in 0..cfg.n_common_concepts {
            let id = vocab.intern(&factory.word(&mut rng));
            let root = roots[k % roots.len()];
            truth.add_edge(root, id).expect("common concept is fresh");
            depth_of.push((id, 2));
            common.push(id);
        }

        // Extra parents for a few nodes (multi-parent hyponymy).
        let candidates: Vec<ConceptId> = depth_of
            .iter()
            .filter(|&&(_, d)| d >= 3)
            .map(|&(n, _)| n)
            .collect();
        let n_multi = (candidates.len() as f64 * cfg.multi_parent_ratio) as usize;
        let mut shuffled = candidates.clone();
        shuffled.shuffle(&mut rng);
        for &node in shuffled.iter().take(n_multi) {
            // A second parent: an unrelated node strictly shallower than
            // `node`, so the longest-path depth (|D|) is unaffected.
            for _ in 0..10 {
                let &(cand, _) = &depth_of[rng.random_range(0..depth_of.len())];
                if cand != node
                    && truth.node_depth(cand) < truth.node_depth(node)
                    && !truth.is_ancestor(cand, node)
                    && !truth.is_ancestor(node, cand)
                    && truth.add_edge(cand, node).is_ok()
                {
                    break;
                }
            }
        }

        // Withhold subtrees as new concepts.
        let non_roots: Vec<ConceptId> = truth.nodes().filter(|n| !roots.contains(n)).collect();
        let target_new = (non_roots.len() as f64 * cfg.new_concept_ratio) as usize;
        let mut is_new = vec![false; vocab.len()];
        let mut n_new = 0usize;
        let mut order = non_roots.clone();
        order.shuffle(&mut rng);
        for &cand in &order {
            if n_new >= target_new {
                break;
            }
            if is_new[cand.index()] {
                continue;
            }
            let subtree: Vec<ConceptId> = std::iter::once(cand)
                .chain(truth.descendants(cand))
                .collect();
            if subtree.len() > 8 {
                continue; // keep withheld subtrees small
            }
            for &s in &subtree {
                if !is_new[s.index()] {
                    is_new[s.index()] = true;
                    n_new += 1;
                }
            }
        }

        let mut existing = Taxonomy::new();
        for n in truth.nodes() {
            if !is_new[n.index()] {
                existing.add_node(n);
            }
        }
        for e in truth.edges() {
            if !is_new[e.parent.index()] && !is_new[e.child.index()] {
                existing
                    .add_edge(e.parent, e.child)
                    .expect("subset of a DAG stays acyclic");
            }
        }
        let new_concepts: Vec<ConceptId> = truth.nodes().filter(|n| is_new[n.index()]).collect();

        let decorations: Vec<String> = (0..24).map(|_| factory.word(&mut rng)).collect();

        World {
            config: cfg.clone(),
            vocab,
            truth,
            existing,
            new_concepts,
            common,
            roots,
            decorations,
        }
    }

    fn make_child(
        parent: ConceptId,
        headword_ratio: f64,
        vocab: &mut Vocabulary,
        factory: &mut WordFactory,
        rng: &mut StdRng,
    ) -> ConceptId {
        let make = |vocab: &mut Vocabulary, name: &str| vocab.intern(name);
        if rng.random_range(0.0..1.0) < headword_ratio {
            // Head-final naming: "<modifier> <parent name>".
            let parent_name = vocab.name(parent).to_owned();
            let name = format!("{} {}", factory.word(rng), parent_name);
            make(vocab, &name)
        } else {
            // Alias naming ("Toast" IsA "Bread"): one or two fresh tokens.
            let name = if rng.random_range(0.0..1.0) < 0.3 {
                format!("{} {}", factory.word(rng), factory.word(rng))
            } else {
                factory.word(rng)
            };
            make(vocab, &name)
        }
    }

    /// The surface name of a concept.
    pub fn name(&self, id: ConceptId) -> &str {
        self.vocab.name(id)
    }

    /// Whether `<parent, child>` is a *direct* ground-truth hyponymy edge.
    pub fn is_true_edge(&self, parent: ConceptId, child: ConceptId) -> bool {
        self.truth.contains_edge(parent, child)
    }

    /// Whether `parent` is a true hypernym (direct or ancestor) of
    /// `child` — the criterion a human judge applies in the paper's
    /// manual evaluations.
    pub fn is_true_hypernym(&self, parent: ConceptId, child: ConceptId) -> bool {
        self.truth.contains_edge(parent, child) || self.truth.is_ancestor(parent, child)
    }

    /// Counts `(headword, other)` edges of a taxonomy under the synthetic
    /// naming convention (Table II's |E_Head| / |E_Others| columns).
    pub fn edge_breakdown(&self, taxo: &Taxonomy) -> (usize, usize) {
        let mut head = 0;
        let mut other = 0;
        for e in taxo.edges() {
            if is_headword_edge(self.name(e.parent), self.name(e.child)) {
                head += 1;
            } else {
                other += 1;
            }
        }
        (head, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(&WorldConfig::tiny(1))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&WorldConfig::tiny(5));
        let b = World::generate(&WorldConfig::tiny(5));
        assert_eq!(a.truth.node_count(), b.truth.node_count());
        assert_eq!(a.truth.edge_count(), b.truth.edge_count());
        let ea: Vec<_> = a.truth.edges().collect();
        let eb: Vec<_> = b.truth.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn node_budget_roughly_met() {
        let w = tiny_world();
        let n = w.truth.node_count();
        // Node budget plus the forced depth chain and common concepts.
        assert!((60..90).contains(&n), "nodes {n}");
    }

    #[test]
    fn depth_matches_config() {
        let w = tiny_world();
        assert_eq!(w.truth.depth(), w.config.max_depth);
    }

    #[test]
    fn headword_ratio_is_respected() {
        let w = World::generate(&WorldConfig {
            target_nodes: 400,
            ..WorldConfig::tiny(3)
        });
        let (head, other) = w.edge_breakdown(&w.truth);
        let ratio = head as f64 / (head + other) as f64;
        assert!(
            (ratio - w.config.headword_ratio).abs() < 0.12,
            "ratio {ratio} (config {})",
            w.config.headword_ratio
        );
    }

    #[test]
    fn new_concepts_absent_from_existing() {
        let w = tiny_world();
        assert!(!w.new_concepts.is_empty());
        for &c in &w.new_concepts {
            assert!(!w.existing.contains_node(c));
            assert!(w.truth.contains_node(c));
        }
        // Every withheld concept's vocabulary entry is intact.
        for &c in &w.new_concepts {
            assert!(!w.name(c).is_empty());
        }
    }

    #[test]
    fn existing_taxonomy_is_consistent_subset() {
        let w = tiny_world();
        for e in w.existing.edges() {
            assert!(w.truth.contains_edge(e.parent, e.child));
        }
        assert!(w.existing.node_count() < w.truth.node_count());
        // Roots survive.
        for &r in &w.roots {
            assert!(w.existing.contains_node(r));
        }
    }

    #[test]
    fn common_concepts_exist_under_roots() {
        let w = tiny_world();
        assert_eq!(w.common.len(), w.config.n_common_concepts);
        for &c in &w.common {
            assert!(w.truth.parents(c).iter().any(|p| w.roots.contains(p)));
        }
    }

    #[test]
    fn truth_hypernym_includes_ancestors() {
        let w = tiny_world();
        // Pick a depth-3 node and check its grandparent.
        let node = w
            .truth
            .nodes()
            .find(|&n| w.truth.node_depth(n) >= 3)
            .expect("depth-3 node exists");
        let parent = w.truth.parents(node)[0];
        let grand = w.truth.parents(parent)[0];
        assert!(w.is_true_hypernym(parent, node));
        assert!(w.is_true_hypernym(grand, node));
        assert!(!w.is_true_edge(grand, node) || w.truth.contains_edge(grand, node));
    }

    #[test]
    fn preset_domains_generate() {
        // Only the smallest preset here (Snack is exercised in the
        // integration tests / benches).
        let w = World::generate(&WorldConfig::prepared_food().scaled(0.3));
        assert!(w.truth.node_count() > 60);
        assert!(!w.new_concepts.is_empty());
    }
}
