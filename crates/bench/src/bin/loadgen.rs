//! `loadgen` — deterministic load generator for a taxo-serve server.
//!
//! ```text
//! loadgen [--addr 127.0.0.1:7878[,HOST:PORT,...]] [--router]
//!         [--seed 42] [--connections 8]
//!         [--requests 10000] [--k 8] [--max-candidates 16]
//!         [--tier f32|int8] [--verify] [--tolerance T]
//!         [--drift N] [--drift-gap-ms N]
//!         [--pipeline N] [--open-loop RPS]
//!         [--shutdown] [--metrics-json PATH]
//!         [--bench-json PATH] [--bench-label NAME]
//! ```
//!
//! Opens `--connections` concurrent connections and round-trips
//! `--requests` successful `score` requests in total. `--addr` accepts
//! a comma-separated list; connections round-robin across the targets
//! (useful for comparing N standalone shards against one router
//! fronting them). `--router` declares the target a taxo-router tier:
//! the post-run health check reports the merged shard count, and the
//! `--bench-json` summary records the topology. `--verify` works
//! unchanged through a router when every shard trained from the same
//! `--seed` (their version-0 snapshots are identical, so the routed
//! response is bit-identical to the offline baseline regardless of
//! which shard answered). Each connection is
//! a retry-enabled [`taxo_serve::Client`]: `busy` sheds, dropped
//! connections, and per-request timeouts (`--timeout-ms`) are retried
//! with exponential backoff up to `--retries` attempts — so the
//! generator survives a server running under `TAXO_FAULTS` chaos. Query terms are drawn by a
//! seeded xorshift per connection from the same deterministic world the
//! server trained on, so `--verify` can rebuild the server's version-0
//! snapshot offline and check every response is **bit-identical**
//! (scores compared via `f32::to_bits`).
//!
//! `--verify` is **version-aware**: a response stamped with the
//! baseline's snapshot version (0, a freshly started server) is checked
//! bit-for-bit against the offline replay, while a response served from
//! any later snapshot — the server took ingests, or `--retrain-every`
//! promoted a retrained candidate mid-run — is checked for **version
//! purity** instead: every response for the same `(query, version)`
//! pair, across all connections, must be byte-identical. A torn swap or
//! a shadow-contaminated response shows up as a purity mismatch; a
//! clean promotion shows up only as the version range moving.
//!
//! `--drift N` adds an ingest driver to the run: a dedicated connection
//! feeds N batches of *unseen* synthetic click evidence (a fresh
//! deterministic `ClickLog` segment over the same world, derived from
//! `--seed`), paced `--drift-gap-ms` apart, while the score connections
//! keep hammering. Against `serve --retrain-every` this is the drift
//! segment that accumulates versions until the control plane retrains
//! and (when the gate clears) promotes — all under live verification.
//!
//! `--tier int8` requests the server's weight-quantized serving tier.
//! Exact `--verify` still holds there — the quant tier is just as
//! deterministic as f32, checked against an offline quant replay.
//! Adding `--tolerance T` switches verification to divergence mode:
//! every served int8 score is compared against the offline **f32**
//! baseline score for the same `(query, item)` pair, a response only
//! counts as a mismatch when a candidate is missing from the baseline,
//! its attached bit flips, or `|served − f32| > T`, and the largest
//! observed divergence is reported (and written to `--bench-json`).
//!
//! `--open-loop RPS` switches the closed request loop to an open-loop
//! arrival schedule: the aggregate offered rate is fixed at RPS,
//! spread evenly across the connections with staggered start offsets,
//! and each request's latency is measured from its **scheduled** arrival
//! time rather than its actual send time. A server that falls behind
//! therefore accrues queueing delay into p99 instead of silently
//! slowing the generator down (the coordinated-omission trap closed-loop
//! benchmarks fall into). Incompatible with `--pipeline` > 1.
//!
//! `--pipeline N` (default 1) keeps N score requests in flight per
//! connection: each burst is written in one frame and the N responses
//! are read back in order, amortizing the per-round-trip syscall and
//! scheduler cost. Verification works unchanged (responses still check
//! per query). The pipelined path uses a plain [`Client`] — a transport
//! error fails the remaining quota instead of retrying — so use
//! `--pipeline 1` when load-testing a server under chaos.
//!
//! Latencies are recorded into the `loadgen.latency_us` histogram;
//! p50/p99 are reported as bucket upper bounds from its snapshot.
//! `--bench-json` writes a one-object machine-readable summary of the
//! run (throughput, latency quantiles, retries, verify outcome, the
//! **effective** connection count — connections that actually carried
//! quota, which is less than `--connections` when `--requests` is
//! smaller — and the resolved target list) for perf baselines such as
//! the repo's `BENCH_serve.json`. It also records the snapshot-version
//! range each target served (`snapshot_versions`: first/last version
//! per target): under `serve --retrain-every` background promotions can
//! swap the snapshot mid-run, and a bench entry is only comparable to
//! another if both record what was actually serving.
//! Exits nonzero on any protocol error, verify mismatch, or incomplete
//! run — `busy` sheds are expected backpressure, never a failure.

use std::sync::Arc;
use std::time::{Duration, Instant};
use taxo_bench::{serving_expansion_config, serving_pipeline};
use taxo_serve::{candidate_key, expected_key, Client, Reply, RetryPolicy, ServeSnapshot, Tier};

/// Bucket upper bounds for `loadgen.latency_us`, in microseconds:
/// 50µs .. ~1.6s, ×2 spaced.
const LATENCY_BOUNDS_US: &[u64] = &[
    50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200, 102_400, 204_800, 409_600,
    819_200, 1_638_400,
];

/// One planned query: its term and (under `--verify`) the expected
/// response key — `(term, score bits, attached)` per ranked candidate.
/// In tolerance mode the vector instead holds the f32 baseline for
/// **every** eligible candidate (unranked lookup table, not a key).
type PlannedQuery = (String, Vec<(String, u32, bool)>);

#[derive(Default)]
struct ConnStats {
    ok: u64,
    protocol_errors: u64,
    verify_mismatches: u64,
    /// Largest |served − f32 baseline| seen in tolerance mode.
    max_divergence: f32,
    /// `(first, last)` snapshot version observed in this connection's
    /// responses — under background retraining the server's version
    /// advances mid-run, and a bench entry is only interpretable if it
    /// records which snapshot range actually answered.
    versions: Option<(u64, u64)>,
    /// Responses bit-checked against the offline baseline (version 0).
    exact_checked: u64,
    /// Responses checked for cross-connection version purity instead
    /// (served from a post-ingest or post-promotion snapshot).
    purity_checked: u64,
}

/// Cross-connection version-purity ledger: the first observed response
/// key for each `(query, snapshot version)` pair. Every later response
/// for the same pair — from any connection — must match it exactly;
/// anything else is a torn swap or shadow contamination, counted as a
/// verify mismatch.
type PurityLedger = std::sync::Mutex<std::collections::HashMap<(String, u64), ResponseKey>>;

/// `(term, score bits, attached)` per ranked candidate — the exact
/// byte-content of one response.
type ResponseKey = Vec<(String, u32, bool)>;

/// One connection's `--open-loop` arrival schedule: request `i` is due
/// at `start + offset + i * interval`. The connection sleeps until each
/// due time and measures latency **from it** — a backlogged server pays
/// its queueing delay into the histogram instead of stalling the clock.
#[derive(Clone, Copy)]
struct Pace {
    start: Instant,
    offset: Duration,
    interval: Duration,
}

impl Pace {
    /// Due time of this connection's `sent`-th request; sleeps until it.
    fn due(&self, sent: u64) -> Instant {
        let due = self.start + self.offset + self.interval.mul_f64(sent as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        due
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:7878");
    let mut router = false;
    let mut seed = 42u64;
    let mut connections = 8usize;
    let mut requests = 10_000u64;
    let mut k = 8usize;
    let mut max_candidates = 16usize;
    let mut tier = Tier::F32;
    let mut verify = false;
    let mut tolerance: Option<f32> = None;
    let mut drift = 0u64;
    let mut drift_gap_ms = 150u64;
    let mut shutdown = false;
    let mut retries = 8u32;
    let mut timeout_ms = 5_000u64;
    let mut pipeline = 1usize;
    let mut open_loop: Option<f64> = None;
    let mut metrics_json: Option<std::path::PathBuf> = None;
    let mut bench_json: Option<std::path::PathBuf> = None;
    let mut bench_label = String::from("loadgen");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&args, &mut i, "--addr"),
            "--router" => router = true,
            "--seed" => seed = parse(&take(&args, &mut i, "--seed")),
            "--connections" => connections = parse(&take(&args, &mut i, "--connections")),
            "--requests" => requests = parse(&take(&args, &mut i, "--requests")),
            "--k" => k = parse(&take(&args, &mut i, "--k")),
            "--max-candidates" => max_candidates = parse(&take(&args, &mut i, "--max-candidates")),
            "--tier" => tier = parse(&take(&args, &mut i, "--tier")),
            "--verify" => verify = true,
            "--tolerance" => tolerance = Some(parse(&take(&args, &mut i, "--tolerance"))),
            "--drift" => drift = parse(&take(&args, &mut i, "--drift")),
            "--drift-gap-ms" => drift_gap_ms = parse(&take(&args, &mut i, "--drift-gap-ms")),
            "--shutdown" => shutdown = true,
            "--retries" => retries = parse(&take(&args, &mut i, "--retries")),
            "--timeout-ms" => timeout_ms = parse(&take(&args, &mut i, "--timeout-ms")),
            "--pipeline" => pipeline = parse(&take(&args, &mut i, "--pipeline")),
            "--open-loop" => open_loop = Some(parse(&take(&args, &mut i, "--open-loop"))),
            "--metrics-json" => {
                metrics_json = Some(std::path::PathBuf::from(take(
                    &args,
                    &mut i,
                    "--metrics-json",
                )));
            }
            "--bench-json" => {
                bench_json = Some(std::path::PathBuf::from(take(
                    &args,
                    &mut i,
                    "--bench-json",
                )));
            }
            "--bench-label" => bench_label = take(&args, &mut i, "--bench-label"),
            "--help" | "-h" => {
                println!(
                    "loadgen [--addr HOST:PORT[,HOST:PORT,...]] [--router] [--seed N] \
                     [--connections N] [--requests N] \
                     [--k N] [--max-candidates N] [--retries N] [--timeout-ms N] \
                     [--tier f32|int8] [--verify] [--tolerance T] \
                     [--drift N] [--drift-gap-ms N] [--pipeline N] [--open-loop RPS] \
                     [--shutdown] [--metrics-json PATH] [--bench-json PATH] [--bench-label NAME]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if connections == 0 || requests == 0 {
        die("--connections and --requests must be at least 1");
    }
    // `--addr` is a comma-separated target list; connections
    // round-robin across it.
    let addrs: Vec<String> = addr
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        die("--addr needs at least one target");
    }
    if pipeline == 0 {
        die("--pipeline must be at least 1");
    }
    if tolerance.is_some() && !verify {
        die("--tolerance only makes sense with --verify");
    }
    if let Some(rps) = open_loop {
        if !(rps.is_finite() && rps > 0.0) {
            die("--open-loop must be a positive request rate");
        }
        if pipeline > 1 {
            die("--open-loop paces individual requests; it is incompatible with --pipeline > 1");
        }
    }
    if let Some(t) = tolerance {
        if !(t.is_finite() && t >= 0.0) {
            die("--tolerance must be a finite non-negative number");
        }
    }

    // Rebuild the server's exact version-0 serving state offline: the
    // query universe (terms with at least one mined candidate) and, for
    // --verify, the expected ranked response per query.
    eprintln!("# rebuilding offline baseline (seed {seed})…");
    let (world, trained) = serving_pipeline(seed);
    let expander = trained.into_expander(&world.existing, serving_expansion_config());
    let pairs = expander.candidate_pairs();
    // The drift segment is a *fresh* click-log over the same world (a
    // seed the training pipeline never saw), split into `--drift`
    // stride batches so each carries evidence across the query space.
    let drift_batches: Vec<Vec<(String, String, u64)>> = if drift > 0 {
        let log = taxo_synth::ClickLog::generate(
            &world,
            &taxo_synth::ClickConfig {
                n_events: 2_000,
                ..taxo_synth::ClickConfig::tiny(seed ^ 0xD21F)
            },
        );
        (0..drift as usize)
            .map(|j| {
                log.records
                    .iter()
                    .skip(j)
                    .step_by(drift as usize)
                    .map(|r| {
                        (
                            world.vocab.name(r.query).to_owned(),
                            r.item_text.clone(),
                            r.count,
                        )
                    })
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };
    let vocab = Arc::new(world.vocab);
    let snapshot = ServeSnapshot::build(
        0,
        Arc::clone(&vocab),
        Arc::new(expander.detector().clone()),
        expander.taxonomy().clone(),
        &pairs,
    );
    let mut queries: Vec<taxo_core::ConceptId> = pairs.iter().map(|p| p.query).collect();
    queries.sort_unstable();
    queries.dedup();
    queries.retain(|&q| !snapshot.eligible(q, max_candidates).is_empty());
    if queries.is_empty() {
        die("offline baseline has no scorable queries; wrong --seed?");
    }
    let plan: Vec<PlannedQuery> = queries
        .iter()
        .map(|&q| {
            let expected = if verify && tolerance.is_some() {
                // Divergence mode: the f32 score of every eligible
                // candidate, so any served top-k is a subset.
                expected_key(
                    &vocab,
                    &snapshot.score_query(q, max_candidates, max_candidates),
                )
            } else if verify {
                // Exact mode: bitwise replay of the requested tier.
                expected_key(
                    &vocab,
                    &snapshot.score_query_tier(q, max_candidates, k, tier),
                )
            } else {
                Vec::new()
            };
            (vocab.name(q).to_owned(), expected)
        })
        .collect();
    eprintln!("# {} scorable queries (tier {tier})", plan.len());

    // Fan out: each connection gets its own quota and xorshift stream.
    // With fewer requests than connections, the tail connections carry
    // no quota and never open — `effective` is the count that do, and
    // it (not the requested `--connections`) is what the bench summary
    // records as the run's concurrency.
    let base = requests / connections as u64;
    let rem = requests % connections as u64;
    let quotas: Vec<u64> = (0..connections)
        .map(|conn| base + u64::from((conn as u64) < rem))
        .collect();
    let effective = quotas.iter().filter(|&&q| q > 0).count();
    let latency = taxo_obs::registry().histogram_with("loadgen.latency_us", LATENCY_BOUNDS_US);
    let policy = RetryPolicy {
        max_attempts: retries.max(1),
        request_timeout: Duration::from_millis(timeout_ms.max(1)),
        ..RetryPolicy::default()
    };
    let plan = Arc::new(plan);
    let purity: Arc<PurityLedger> = Arc::default();
    let t0 = Instant::now();
    let (stats, drift_errors): (Vec<ConnStats>, u64) = std::thread::scope(|scope| {
        // The drift driver runs beside the score connections: versions
        // advance while verification is live, which is exactly the
        // regime `serve --retrain-every` promotes under.
        let drift_handle = (drift > 0).then(|| {
            let policy = policy.clone();
            let addr = addrs[0].clone();
            let batches = &drift_batches;
            scope.spawn(move || {
                run_drift(&addr, policy, batches, Duration::from_millis(drift_gap_ms))
            })
        });
        let handles: Vec<_> = (0..effective)
            .map(|conn| {
                let quota = quotas[conn];
                let plan = Arc::clone(&plan);
                let latency = Arc::clone(&latency);
                let purity = Arc::clone(&purity);
                let addr = addrs[conn % addrs.len()].clone();
                let policy = policy.clone();
                // Open loop: the aggregate rate is spread evenly over
                // the connections, with staggered offsets so arrivals
                // interleave instead of bursting every interval.
                let pace = open_loop.map(|rps| Pace {
                    start: t0,
                    offset: Duration::from_secs_f64(conn as f64 / rps),
                    interval: Duration::from_secs_f64(effective as f64 / rps),
                });
                scope.spawn(move || {
                    run_connection(
                        &addr, policy, seed, conn, quota, k, tier, verify, tolerance, pipeline,
                        pace, &plan, &purity, &latency,
                    )
                })
            })
            .collect();
        let stats = handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .collect();
        let drift_errors = drift_handle.map_or(0, |h| h.join().expect("drift thread panicked"));
        (stats, drift_errors)
    });
    let elapsed = t0.elapsed();

    let ok: u64 = stats.iter().map(|s| s.ok).sum();
    let proto: u64 = stats.iter().map(|s| s.protocol_errors).sum();
    let mismatches: u64 = stats.iter().map(|s| s.verify_mismatches).sum();
    let exact_checked: u64 = stats.iter().map(|s| s.exact_checked).sum();
    let purity_checked: u64 = stats.iter().map(|s| s.purity_checked).sum();
    let max_divergence = stats.iter().map(|s| s.max_divergence).fold(0.0, f32::max);
    // Per-target snapshot-version range: connections round-robin over
    // the target list, so target `t` aggregates every connection with
    // `conn % addrs.len() == t`. Versions are monotone per target, so
    // min-of-firsts / max-of-lasts is the observed range.
    let version_ranges: Vec<Option<(u64, u64)>> = (0..addrs.len())
        .map(|t| {
            stats
                .iter()
                .enumerate()
                .filter(|(conn, _)| conn % addrs.len() == t)
                .filter_map(|(_, s)| s.versions)
                .fold(None, |acc: Option<(u64, u64)>, (first, last)| match acc {
                    Some((f, l)) => Some((f.min(first), l.max(last))),
                    None => Some((first, last)),
                })
        })
        .collect();
    // Client-side resilience counters, bumped by the retry loop as it
    // works around sheds, timeouts, and dropped connections.
    let retries_used = taxo_obs::counter!("serve.retries").get();
    let timeouts = taxo_obs::counter!("serve.timeouts").get();
    taxo_obs::counter!("loadgen.requests.ok").add(ok);
    taxo_obs::counter!("loadgen.errors.protocol").add(proto);
    taxo_obs::counter!("loadgen.errors.verify_mismatch").add(mismatches);

    // Final health + stats over a fresh connection, and the optional
    // shutdown request.
    match Client::connect(addrs[0].as_str()) {
        Ok(mut c) => {
            if let Ok(Reply::Ok(h)) = c.health() {
                eprintln!(
                    "# server health: version {} / {} nodes / {} edges",
                    fmt_u64(h.get("version")),
                    fmt_u64(h.get("nodes")),
                    fmt_u64(h.get("edges"))
                );
                if router {
                    match h.get("shards") {
                        Some(s) => eprintln!(
                            "# router tier: {} shard(s) behind {}",
                            fmt_u64(Some(s)),
                            addrs[0]
                        ),
                        None => eprintln!(
                            "# warning: --router set but {} reports no shards \
                             (plain taxo-serve?)",
                            addrs[0]
                        ),
                    }
                }
            }
            if let Ok(Reply::Ok(s)) = c.stats() {
                let batches = s
                    .get("histograms")
                    .and_then(|h| h.get("serve.batch.jobs"))
                    .map(|b| (fmt_u64(b.get("count")), fmt_u64(b.get("sum"))));
                if let Some((count, sum)) = batches {
                    eprintln!("# server batching: {count} batches / {sum} jobs");
                }
            }
            if shutdown {
                match c.shutdown() {
                    Ok(_) => eprintln!("# shutdown requested"),
                    Err(e) => eprintln!("# shutdown request failed: {e}"),
                }
            }
        }
        Err(e) => eprintln!("# post-run stats connection failed: {e}"),
    }

    let (p50, p99) = percentiles(&latency_snapshot());
    println!(
        "loadgen: {ok}/{requests} ok over {effective} connections (pipeline {pipeline}) \
         against {} target(s) in {elapsed:.1?} ({:.0} req/s), {retries_used} retries, \
         {timeouts} timeouts, p50 <= {p50}, p99 <= {p99}",
        addrs.len(),
        ok as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    if verify {
        match tolerance {
            Some(t) => println!(
                "verify: {mismatches} mismatches across {ok} responses, \
                 max |served - f32| = {max_divergence:.3e} (tolerance {t})"
            ),
            None => println!("verify: {mismatches} mismatches across {ok} responses"),
        }
        if purity_checked > 0 {
            eprintln!(
                "# verify split: {exact_checked} bit-exact at the baseline version, \
                 {purity_checked} purity-checked on later snapshots"
            );
        }
    }
    if proto > 0 {
        println!("protocol errors: {proto}");
    }
    for (t, range) in version_ranges.iter().enumerate() {
        match range {
            Some((first, last)) if first != last => eprintln!(
                "# target {} served snapshot versions {first}..{last} \
                 (snapshot swapped mid-run)",
                addrs[t]
            ),
            Some((v, _)) => eprintln!("# target {} served snapshot version {v}", addrs[t]),
            None => {}
        }
    }

    if let Some(path) = &bench_json {
        let snap = latency_snapshot();
        let addrs_json = format!(
            "[{}]",
            addrs
                .iter()
                .map(|a| format!("{a:?}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        // One `{addr, first_version, last_version}` object per target;
        // nulls when a target answered no scores (e.g. zero quota).
        let versions_json = format!(
            "[{}]",
            addrs
                .iter()
                .zip(&version_ranges)
                .map(|(a, range)| match range {
                    Some((first, last)) => format!(
                        "{{\"addr\": {a:?}, \"first_version\": {first}, \
                         \"last_version\": {last}}}"
                    ),
                    None => format!(
                        "{{\"addr\": {a:?}, \"first_version\": null, \
                         \"last_version\": null}}"
                    ),
                })
                .collect::<Vec<_>>()
                .join(", ")
        );
        let body = format!(
            "{{\n  \"label\": {label:?},\n  \"tier\": \"{tier}\",\n  \
             \"requests\": {requests},\n  \"ok\": {ok},\n  \
             \"connections\": {effective},\n  \"pipeline\": {pipeline},\n  \
             \"open_loop_rps\": {open_loop_rps},\n  \
             \"router\": {router},\n  \"addrs\": {addrs_json},\n  \
             \"elapsed_s\": {elapsed_s:.3},\n  \"rps\": {rps:.1},\n  \"p50_us\": {p50},\n  \"p99_us\": {p99},\n  \
             \"retries\": {retries_used},\n  \"timeouts\": {timeouts},\n  \
             \"verify\": {verify},\n  \"verify_mismatches\": {mismatches},\n  \
             \"drift_batches\": {drift},\n  \
             \"tolerance\": {tol},\n  \"max_abs_divergence\": {max_divergence:.3e},\n  \
             \"snapshot_versions\": {versions_json}\n}}\n",
            label = bench_label,
            elapsed_s = elapsed.as_secs_f64(),
            rps = ok as f64 / elapsed.as_secs_f64().max(1e-9),
            p50 = quantile_bound_us(&snap, 0.50),
            p99 = quantile_bound_us(&snap, 0.99),
            tol = tolerance.map_or_else(|| String::from("null"), |t| format!("{t}")),
            open_loop_rps = open_loop.map_or_else(|| String::from("null"), |r| format!("{r}")),
        );
        match std::fs::write(path, body) {
            Ok(()) => eprintln!("# bench summary written to {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }

    if let Some(path) = &metrics_json {
        match taxo_obs::report::write_json_lines(path) {
            Ok(()) => eprintln!("# metrics written to {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }
    taxo_obs::report::report_if_configured();

    if proto > 0 || mismatches > 0 || ok < requests || drift_errors > 0 {
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_connection(
    addr: &str,
    policy: RetryPolicy,
    seed: u64,
    conn: usize,
    quota: u64,
    k: usize,
    tier: Tier,
    verify: bool,
    tolerance: Option<f32>,
    pipeline: usize,
    pace: Option<Pace>,
    plan: &[PlannedQuery],
    purity: &PurityLedger,
    latency: &taxo_obs::Histogram,
) -> ConnStats {
    use std::net::ToSocketAddrs;
    if pipeline > 1 {
        return run_connection_pipelined(
            addr, seed, conn, quota, k, tier, verify, tolerance, pipeline, plan, purity, latency,
        );
    }
    let mut stats = ConnStats::default();
    let Some(sock) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        eprintln!("# conn {conn}: unresolvable address {addr}");
        stats.protocol_errors += quota;
        return stats;
    };
    // Backpressure, timeouts, and dropped connections are absorbed by
    // the client's bounded retry loop; only a request that fails every
    // attempt surfaces here.
    let mut client = Client::builder(sock).retry(policy).build();
    let mut rng = Xorshift::new(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(conn as u64 + 1)));
    // Only a non-default tier goes on the wire, so the f32 run also
    // exercises the server-side default.
    let wire_tier = (tier != Tier::default()).then_some(tier);
    let mut sent = 0u64;
    while stats.ok < quota {
        let (query, expected) = &plan[(rng.next() % plan.len() as u64) as usize];
        // Open loop: wait for the request's scheduled arrival and clock
        // latency from it, so a lagging server pays queueing delay.
        let t = match &pace {
            Some(pace) => pace.due(sent),
            None => Instant::now(),
        };
        sent += 1;
        match client.score_tier(query, Some(k), wire_tier) {
            Ok(Reply::Ok(v)) => {
                latency.observe(t.elapsed().as_micros() as u64);
                stats.ok += 1;
                note_ok_reply(
                    &v, expected, verify, tolerance, conn, query, purity, &mut stats,
                );
            }
            Ok(Reply::Err { code, detail }) => {
                eprintln!("# conn {conn}: server error {code}: {detail:?}");
                stats.protocol_errors += 1;
                stats.ok += 1; // consume the slot so the run terminates
            }
            Err(e) => {
                eprintln!("# conn {conn}: request failed after retries: {e}");
                stats.protocol_errors += quota - stats.ok;
                break;
            }
        }
    }
    stats
}

/// Applies `--verify` to one `ok` response, updating mismatch and
/// divergence counters (shared by the synchronous and pipelined paths).
///
/// Version-aware: a response at the baseline version (0) is replayed
/// bit-for-bit against the offline expectation; a response from any
/// later snapshot (the server took ingests or promoted a retrained
/// candidate) is instead held to cross-connection **version purity**
/// via the shared ledger — same `(query, version)` must always produce
/// the same bytes, no matter which connection or which side of a swap
/// observed it.
#[allow(clippy::too_many_arguments)]
fn note_ok_reply(
    v: &taxo_serve::json::Value,
    expected: &[(String, u32, bool)],
    verify: bool,
    tolerance: Option<f32>,
    conn: usize,
    query: &str,
    purity: &PurityLedger,
    stats: &mut ConnStats,
) {
    let version = v.get("version").and_then(taxo_serve::json::Value::as_u64);
    if let Some(version) = version {
        stats.versions = match stats.versions {
            // Responses arrive in request order on a connection, so the
            // latest reply's version is the range's `last`.
            Some((first, _)) => Some((first, version)),
            None => Some((version, version)),
        };
    }
    let mismatch = if !verify {
        false
    } else if let Some(served_version) = version.filter(|&ver| ver > 0) {
        stats.purity_checked += 1;
        match candidate_key(v) {
            None => true,
            Some(key) => match purity
                .lock()
                .expect("purity ledger poisoned")
                .entry((query.to_owned(), served_version))
            {
                std::collections::hash_map::Entry::Occupied(e) => *e.get() != key,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(key);
                    false
                }
            },
        }
    } else if let Some(tol) = tolerance {
        stats.exact_checked += 1;
        match divergence_from_baseline(v, expected) {
            Some(d) => {
                stats.max_divergence = stats.max_divergence.max(d);
                d > tol
            }
            None => true,
        }
    } else {
        stats.exact_checked += 1;
        candidate_key(v).as_deref() != Some(expected)
    };
    if mismatch {
        stats.verify_mismatches += 1;
        if stats.verify_mismatches == 1 {
            eprintln!("# conn {conn}: first mismatch on query {query:?}");
        }
    }
}

/// The `--drift` ingest driver: feeds the pre-built unseen click
/// batches to the first target, paced `gap` apart, over a retrying
/// client. Returns the number of batches that failed outright (any
/// nonzero fails the run — drift that silently vanished would make a
/// "promotion happened" assertion meaningless).
fn run_drift(
    addr: &str,
    policy: RetryPolicy,
    batches: &[Vec<(String, String, u64)>],
    gap: Duration,
) -> u64 {
    use std::net::ToSocketAddrs;
    let Some(sock) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        eprintln!("# drift: unresolvable address {addr}");
        return batches.len() as u64;
    };
    let mut client = Client::builder(sock).retry(policy).build();
    let (mut acked, mut errors) = (0u64, 0u64);
    let mut final_version = 0u64;
    for (j, batch) in batches.iter().enumerate() {
        if j > 0 {
            std::thread::sleep(gap);
        }
        match client.ingest(batch) {
            Ok(Reply::Ok(v)) => {
                acked += 1;
                // A plain serve ack carries `version`; a router ack
                // carries the per-shard `versions` vector.
                let version = v
                    .get("version")
                    .and_then(taxo_serve::json::Value::as_u64)
                    .or_else(|| {
                        v.get("versions")
                            .and_then(taxo_serve::json::Value::items)
                            .and_then(|vs| {
                                vs.iter().filter_map(taxo_serve::json::Value::as_u64).max()
                            })
                    });
                if let Some(ver) = version {
                    final_version = final_version.max(ver);
                }
            }
            Ok(Reply::Err { code, detail }) => {
                eprintln!("# drift batch {j}: server error {code}: {detail:?}");
                errors += 1;
            }
            Err(e) => {
                eprintln!("# drift batch {j}: failed after retries: {e}");
                errors += (batches.len() - j) as u64;
                break;
            }
        }
    }
    eprintln!(
        "# drift: {acked}/{} ingest batch(es) acked, server reached version {final_version}",
        batches.len()
    );
    errors
}

/// `--pipeline N` connection loop: windows of N requests written as one
/// frame, responses read back in order. A plain [`Client`] with no retry
/// — only `busy` sheds are absorbed (the slot is redrawn in a later
/// burst); any transport error fails the connection's remaining quota.
#[allow(clippy::too_many_arguments)]
fn run_connection_pipelined(
    addr: &str,
    seed: u64,
    conn: usize,
    quota: u64,
    k: usize,
    tier: Tier,
    verify: bool,
    tolerance: Option<f32>,
    pipeline: usize,
    plan: &[PlannedQuery],
    purity: &PurityLedger,
    latency: &taxo_obs::Histogram,
) -> ConnStats {
    let mut stats = ConnStats::default();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("# conn {conn}: connect failed: {e}");
            stats.protocol_errors += quota;
            return stats;
        }
    };
    let mut rng = Xorshift::new(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(conn as u64 + 1)));
    let wire_tier = (tier != Tier::default()).then_some(tier);
    while stats.ok < quota {
        let burst = pipeline.min((quota - stats.ok) as usize);
        let picks: Vec<usize> = (0..burst)
            .map(|_| (rng.next() % plan.len() as u64) as usize)
            .collect();
        let queries: Vec<&str> = picks.iter().map(|&p| plan[p].0.as_str()).collect();
        let t = Instant::now();
        match client.score_burst(&queries, Some(k), wire_tier) {
            Ok(replies) => {
                // The window's wall time bounds every member's latency.
                let us = t.elapsed().as_micros() as u64;
                for (reply, &p) in replies.iter().zip(&picks) {
                    match reply {
                        Reply::Ok(v) => {
                            latency.observe(us);
                            stats.ok += 1;
                            note_ok_reply(
                                v, &plan[p].1, verify, tolerance, conn, &plan[p].0, purity,
                                &mut stats,
                            );
                        }
                        Reply::Err { code, .. } if code == "busy" => {}
                        Reply::Err { code, detail } => {
                            eprintln!("# conn {conn}: server error {code}: {detail:?}");
                            stats.protocol_errors += 1;
                            stats.ok += 1; // consume the slot so the run terminates
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("# conn {conn}: pipelined burst failed: {e}");
                stats.protocol_errors += quota - stats.ok;
                break;
            }
        }
    }
    stats
}

/// Tolerance-mode check: every served candidate must appear in the f32
/// baseline table with the same attached bit; returns the largest
/// |served − baseline| score gap, or `None` when a candidate is missing
/// or its attached bit flipped (a structural mismatch, not a rounding
/// one).
fn divergence_from_baseline(
    v: &taxo_serve::json::Value,
    baseline: &[(String, u32, bool)],
) -> Option<f32> {
    let served = candidate_key(v)?;
    let mut worst = 0.0f32;
    for (term, bits, attached) in &served {
        let (_, base_bits, base_attached) = baseline.iter().find(|(t, _, _)| t == term)?;
        if attached != base_attached {
            return None;
        }
        let d = (f32::from_bits(*bits) - f32::from_bits(*base_bits)).abs();
        if !d.is_finite() {
            return None;
        }
        worst = worst.max(d);
    }
    Some(worst)
}

/// xorshift64* — tiny deterministic stream, one per connection.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Xorshift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn latency_snapshot() -> taxo_obs::HistogramSnapshot {
    taxo_obs::registry()
        .snapshot()
        .histograms
        .into_iter()
        .find(|h| h.name == "loadgen.latency_us")
        .expect("latency histogram is registered before any observation")
}

/// The numeric bucket upper bound covering quantile `q`, in µs (the last
/// bound when the quantile falls past it — good enough for a baseline).
fn quantile_bound_us(h: &taxo_obs::HistogramSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let target = (q * h.count as f64).ceil() as u64;
    let mut cumulative = 0u64;
    for (i, &bucket) in h.buckets.iter().enumerate() {
        cumulative += bucket;
        if cumulative >= target {
            if let Some(&bound) = h.bounds.get(i) {
                return bound;
            }
            break;
        }
    }
    h.bounds.last().copied().unwrap_or(0)
}

/// Estimates (p50, p99) as the bucket upper bound covering each quantile;
/// observations past the last bound report as `> <last bound>`.
fn percentiles(h: &taxo_obs::HistogramSnapshot) -> (String, String) {
    let quantile = |q: f64| -> String {
        if h.count == 0 {
            return String::from("n/a");
        }
        let target = (q * h.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &bucket) in h.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return match h.bounds.get(i) {
                    Some(bound) => format!("{bound}us"),
                    None => format!("> {}us", h.bounds.last().copied().unwrap_or(0)),
                };
            }
        }
        String::from("n/a")
    };
    (quantile(0.50), quantile(0.99))
}

fn fmt_u64(v: Option<&taxo_serve::json::Value>) -> String {
    v.and_then(taxo_serve::json::Value::as_u64)
        .map_or_else(|| String::from("?"), |n| n.to_string())
}

fn take(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| die(&format!("{flag} takes a value")))
        .clone()
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("invalid numeric value {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
