//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale test|quick|full] [--threads N] [--metrics-json PATH]
//!       [ARTEFACT...]
//!
//! ARTEFACTs: table1 table2 table3 table4 table5 table6 table7 table8
//!            table9 table10 table11 table12 fig3 fig4 user-study
//!            deployment all
//! ```
//!
//! With no artefact arguments, `all` is assumed. `--scale full` matches
//! the numbers recorded in EXPERIMENTS.md; `quick` is ~10× faster.
//!
//! `--metrics-json PATH` writes the end-of-run metrics snapshot
//! (per-phase wall time, mining/expansion counters) as JSON-lines;
//! `TAXO_METRICS=text|json` additionally dumps it to stderr, and
//! `TAXO_LOG=text|json` streams span closes live (see the `taxo_obs`
//! crate docs).

use std::time::Instant;
use taxo_bench::{build_domains, build_snack, parse_scale};
use taxo_eval::{experiments, DomainContext, Scale};

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "fig3",
    "fig4",
    "user-study",
    "deployment",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut snack_only = false;
    let mut metrics_json: Option<std::path::PathBuf> = None;
    let mut artefacts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--snack-only" => snack_only = true,
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| parse_scale(s))
                    .unwrap_or_else(|| die("--scale takes test|quick|full"));
            }
            "--metrics-json" => {
                i += 1;
                let path = args
                    .get(i)
                    .unwrap_or_else(|| die("--metrics-json takes a file path"));
                metrics_json = Some(std::path::PathBuf::from(path));
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threads takes a positive integer"));
                // The TAXO_THREADS env knob wins when set, matching how
                // every other tool in the workspace reads it.
                if std::env::var_os("TAXO_THREADS").is_none() {
                    taxo_nn::parallel::set_threads(n);
                }
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale test|quick|full] [--snack-only] [--threads N] \
                     [--metrics-json PATH] [ARTEFACT...]"
                );
                println!("ARTEFACTs: {} all", ALL.join(" "));
                return;
            }
            other => artefacts.push(other.to_owned()),
        }
        i += 1;
    }
    if artefacts.is_empty() || artefacts.iter().any(|a| a == "all") {
        artefacts = ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    for a in &artefacts {
        if !ALL.contains(&a.as_str()) {
            die(&format!(
                "unknown artefact {a}; choose from: {}",
                ALL.join(" ")
            ));
        }
    }

    eprintln!("# scale: {scale:?} (snack_only: {snack_only})");
    let t0 = Instant::now();
    eprintln!("# generating domains…");
    let ctxs = {
        let _g = taxo_obs::span!("repro.build_domains");
        if snack_only {
            vec![build_snack(scale)]
        } else {
            build_domains(scale)
        }
    };
    eprintln!("# domains ready in {:.1?}", t0.elapsed());
    let snack = &ctxs[0];

    for a in &artefacts {
        let t = Instant::now();
        let output = {
            let _g = taxo_obs::span::enter(&format!("repro.{a}"));
            run(a, &ctxs, snack)
        };
        println!("{output}");
        eprintln!("# {a} done in {:.1?}", t.elapsed());
    }
    eprintln!("# total {:.1?}", t0.elapsed());

    if let Some(path) = &metrics_json {
        match taxo_obs::report::write_json_lines(path) {
            Ok(()) => eprintln!("# metrics written to {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }
    // Honour TAXO_METRICS for a stderr dump, independent of the file.
    taxo_obs::report::report_if_configured();
}

fn run(artefact: &str, ctxs: &[DomainContext], snack: &DomainContext) -> String {
    match artefact {
        "table1" => experiments::table1(ctxs).render(),
        "table2" => experiments::table2(ctxs).1.render(),
        "table3" => experiments::table3(ctxs).render(),
        "table4" => experiments::table4(ctxs, &[20, 10, 10]).1.render(),
        "table5" => experiments::table5(ctxs).1.render(),
        "table6" => experiments::table6(ctxs).1.render(),
        "table7" => experiments::table7(ctxs).1.render(),
        "table8" => experiments::table8(ctxs).1.render(),
        "table9" => experiments::table9(snack).1.render(),
        "table10" => experiments::table10(ctxs, 5).1,
        "table11" => experiments::table11(snack).render(),
        "table12" => experiments::table12(snack).1.render(),
        "fig3" => experiments::fig3(snack).1.render(),
        "fig4" => experiments::fig4(snack).1.render(),
        "user-study" => experiments::user_study(snack, 100).1.render(),
        "deployment" => experiments::deployment(ctxs).1.render(),
        other => unreachable!("validated artefact {other}"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
