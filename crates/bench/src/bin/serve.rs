//! `serve` — trains the tiny demo pipeline and serves it over the
//! taxo-serve line protocol.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--seed 42] [--threads N]
//!       [--workers N] [--batch-max N] [--queue-cap N]
//!       [--max-candidates N] [--tier f32|int8] [--metrics-json PATH]
//! ```
//!
//! Prints `taxo-serve listening on <addr>` once ready, then serves until
//! a `shutdown` request arrives. `--metrics-json PATH` writes the final
//! taxo-obs snapshot (request counters, queue gauges, batch-size
//! histograms, per-kind latency spans) after shutdown. `--threads` sets
//! the compute thread count unless `TAXO_THREADS` is set (env wins).

use std::sync::Arc;
use taxo_bench::{serving_expansion_config, serving_pipeline};
use taxo_serve::{ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:7878");
    let mut seed = 42u64;
    let mut threads: Option<usize> = None;
    let mut cfg = ServeConfig::default();
    let mut metrics_json: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&args, &mut i, "--addr"),
            "--seed" => seed = parse(&take(&args, &mut i, "--seed")),
            "--threads" => threads = Some(parse(&take(&args, &mut i, "--threads"))),
            "--workers" => cfg.workers = parse(&take(&args, &mut i, "--workers")),
            "--batch-max" => cfg.batch_max = parse(&take(&args, &mut i, "--batch-max")),
            "--queue-cap" => cfg.score_queue_cap = parse(&take(&args, &mut i, "--queue-cap")),
            "--max-candidates" => {
                cfg.max_candidates = parse(&take(&args, &mut i, "--max-candidates"));
            }
            "--tier" => cfg.default_tier = parse(&take(&args, &mut i, "--tier")),
            "--metrics-json" => {
                metrics_json = Some(std::path::PathBuf::from(take(
                    &args,
                    &mut i,
                    "--metrics-json",
                )));
            }
            "--help" | "-h" => {
                println!(
                    "serve [--addr HOST:PORT] [--seed N] [--threads N] [--workers N] \
                     [--batch-max N] [--queue-cap N] [--max-candidates N] [--tier f32|int8] \
                     [--metrics-json PATH]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    // The env knob wins when set, as everywhere else in the workspace.
    if let Some(n) = threads {
        if std::env::var_os("TAXO_THREADS").is_none() {
            taxo_nn::parallel::set_threads(n);
        }
    }

    eprintln!("# training tiny serving pipeline (seed {seed})…");
    let t0 = std::time::Instant::now();
    let (world, trained) = serving_pipeline(seed);
    let expander = trained.into_expander(&world.existing, serving_expansion_config());
    eprintln!("# trained in {:.1?}", t0.elapsed());

    let handle = Server::start(expander, Arc::new(world.vocab), cfg, addr.as_str())
        .unwrap_or_else(|e| die(&format!("binding {addr}: {e}")));
    println!("taxo-serve listening on {}", handle.addr());
    handle.join();
    eprintln!("# shut down cleanly");

    if let Some(path) = &metrics_json {
        match taxo_obs::report::write_json_lines(path) {
            Ok(()) => eprintln!("# metrics written to {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }
    taxo_obs::report::report_if_configured();
}

fn take(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| die(&format!("{flag} takes a value")))
        .clone()
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("invalid numeric value {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
