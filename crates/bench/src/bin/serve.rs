//! `serve` — trains the tiny demo pipeline and serves it over the
//! taxo-serve line protocol.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--seed 42] [--threads N]
//!       [--workers N] [--batch-max N] [--queue-cap N]
//!       [--max-candidates N] [--tier f32|int8]
//!       [--io-model blocking|reactor] [--reactor-threads N]
//!       [--idle-timeout-ms N]
//!       [--score-cache N] [--resp-cache N] [--metrics-json PATH]
//!       [--data-dir PATH] [--fsync always|batch|batch:<OPS>:<MS>]
//!       [--snapshot-every N] [--recover]
//!       [--retrain-every N] [--shadow-sample N] [--promote-gate P[:LAT_US]]
//! ```
//!
//! Prints `taxo-serve listening on <addr>` once ready, then serves until
//! a `shutdown` request arrives. `--metrics-json PATH` writes the final
//! taxo-obs snapshot (request counters, queue gauges, batch-size
//! histograms, per-kind latency spans) after shutdown. `--threads` sets
//! the compute thread count unless `TAXO_THREADS` is set (env wins).
//!
//! `--io-model reactor` (Linux) multiplexes all client connections over
//! `--reactor-threads` epoll reactors instead of one blocking thread per
//! connection; `--idle-timeout-ms` closes connections silent for that
//! long in either model.
//!
//! `--data-dir` turns on durability: every ingest batch is appended to a
//! CRC32-framed WAL and fsynced before it is acknowledged (`--fsync`
//! picks the group-commit policy), with a durable snapshot checkpoint
//! every `--snapshot-every` versions. After a crash, `--recover` (with
//! the same `--data-dir` and `--seed`) loads the latest snapshot,
//! replays the WAL tail — truncating any torn final record — and
//! resumes serving the exact pre-crash state.
//!
//! `--retrain-every N` (0 = off, the default) starts the taxo-train
//! control plane: a background trainer that, every N acknowledged ingest
//! versions, exports the live expander state, fine-tunes a clone of the
//! detector on it, shadow-scores a deterministic 1-in-`--shadow-sample`
//! mirror of live score traffic against the candidate, and promotes it
//! through the serving hot-swap only when the synthetic judge panel's
//! precision (and optional latency bound) clears `--promote-gate`
//! (`P` or `P:LAT_US`, default `0.7`). A rejected candidate is a recorded
//! rollback; the live snapshot keeps answering untouched. Decisions are
//! summarized on shutdown and visible in `--metrics-json` as
//! `train.epochs` / `train.promotions` / `train.rollbacks`.

use std::sync::Arc;
use std::time::Duration;
use taxo_bench::{serving_expansion_config, serving_pipeline};
use taxo_expand::DetectorConfig;
use taxo_serve::{DurabilityConfig, FsyncPolicy, ServeConfig, Server};
use taxo_synth::Panel;
use taxo_train::{ControlPlane, GateConfig, LatencyProbe, PanelOracle, TrainConfig, Trainer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:7878");
    let mut seed = 42u64;
    let mut threads: Option<usize> = None;
    let mut cfg = ServeConfig::default();
    let mut metrics_json: Option<std::path::PathBuf> = None;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut fsync = FsyncPolicy::default();
    let mut snapshot_every = 8u64;
    let mut recover = false;
    let mut retrain_every = 0u64;
    let mut shadow_sample = 2u64;
    let mut gate = GateConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&args, &mut i, "--addr"),
            "--seed" => seed = parse(&take(&args, &mut i, "--seed")),
            "--threads" => threads = Some(parse(&take(&args, &mut i, "--threads"))),
            "--workers" => cfg.workers = parse(&take(&args, &mut i, "--workers")),
            "--batch-max" => cfg.batch_max = parse(&take(&args, &mut i, "--batch-max")),
            "--queue-cap" => cfg.score_queue_cap = parse(&take(&args, &mut i, "--queue-cap")),
            "--max-candidates" => {
                cfg.max_candidates = parse(&take(&args, &mut i, "--max-candidates"));
            }
            "--tier" => cfg.default_tier = parse(&take(&args, &mut i, "--tier")),
            "--io-model" => cfg.io_model = parse(&take(&args, &mut i, "--io-model")),
            "--reactor-threads" => {
                cfg.reactor_threads = parse(&take(&args, &mut i, "--reactor-threads"));
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout =
                    Duration::from_millis(parse(&take(&args, &mut i, "--idle-timeout-ms")));
            }
            "--score-cache" => cfg.score_cache_cap = parse(&take(&args, &mut i, "--score-cache")),
            "--resp-cache" => cfg.resp_cache_cap = parse(&take(&args, &mut i, "--resp-cache")),
            "--metrics-json" => {
                metrics_json = Some(std::path::PathBuf::from(take(
                    &args,
                    &mut i,
                    "--metrics-json",
                )));
            }
            "--data-dir" => {
                data_dir = Some(std::path::PathBuf::from(take(&args, &mut i, "--data-dir")));
            }
            "--fsync" => fsync = parse_fsync(&take(&args, &mut i, "--fsync")),
            "--snapshot-every" => snapshot_every = parse(&take(&args, &mut i, "--snapshot-every")),
            "--recover" => recover = true,
            "--retrain-every" => retrain_every = parse(&take(&args, &mut i, "--retrain-every")),
            "--shadow-sample" => shadow_sample = parse(&take(&args, &mut i, "--shadow-sample")),
            "--promote-gate" => {
                gate = GateConfig::parse(&take(&args, &mut i, "--promote-gate"))
                    .unwrap_or_else(|e| die(&format!("--promote-gate: {e}")));
            }
            "--help" | "-h" => {
                println!(
                    "serve [--addr HOST:PORT] [--seed N] [--threads N] [--workers N] \
                     [--batch-max N] [--queue-cap N] [--max-candidates N] [--tier f32|int8] \
                     [--io-model blocking|reactor] [--reactor-threads N] [--idle-timeout-ms N] \
                     [--score-cache N] [--resp-cache N] [--metrics-json PATH] \
                     [--data-dir PATH] \
                     [--fsync always|batch|batch:<OPS>:<MS>] [--snapshot-every N] [--recover] \
                     [--retrain-every N] [--shadow-sample N] [--promote-gate P[:LAT_US]]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    // The env knob wins when set, as everywhere else in the workspace.
    if let Some(n) = threads {
        if std::env::var_os("TAXO_THREADS").is_none() {
            taxo_nn::parallel::set_threads(n);
        }
    }

    if recover && data_dir.is_none() {
        die("--recover requires --data-dir");
    }

    eprintln!("# training tiny serving pipeline (seed {seed})…");
    let t0 = std::time::Instant::now();
    let (world, trained) = serving_pipeline(seed);
    let expansion_cfg = serving_expansion_config();
    let expander = trained.into_expander(&world.existing, expansion_cfg.clone());
    eprintln!("# trained in {:.1?}", t0.elapsed());
    // Clone the vocabulary out so the `World` stays whole: the trainer's
    // judge panel needs its ground truth as the promotion oracle.
    let vocab = Arc::new(world.vocab.clone());

    // `--recover` swaps the freshly trained expander for the durable
    // state the previous run reached; the frozen detector and expansion
    // config come from the (deterministic) training above.
    let (expander, report) = if recover {
        let dir = data_dir.as_deref().expect("checked above");
        let detector = expander.detector().clone();
        match Server::recover(dir, detector, expansion_cfg, &vocab) {
            Ok((expander, report)) => {
                eprintln!(
                    "# recovered {}: snapshot v{}, {} ops / {} records replayed, \
                     {} torn bytes truncated, resuming at v{}",
                    dir.display(),
                    report.snapshot_version,
                    report.replayed_ops,
                    report.replayed_records,
                    report.truncated_bytes,
                    report.final_version
                );
                (expander, Some(report))
            }
            Err(e) => die(&format!("recovering {}: {e}", dir.display())),
        }
    } else {
        (expander, None)
    };

    let mut builder = Server::builder(expander, vocab).config(cfg);
    if let Some(dir) = data_dir {
        builder = builder.durability(DurabilityConfig::Wal {
            dir,
            fsync,
            snapshot_every,
        });
    }
    if let Some(report) = &report {
        builder = builder.recovered(report);
    }
    let handle = builder
        .bind(addr.as_str())
        .unwrap_or_else(|e| die(&format!("binding {addr}: {e}")));
    println!("taxo-serve listening on {}", handle.addr());

    // `--retrain-every` arms the continuous-learning control plane: a
    // background trainer that retrains on accumulated ingest, shadow-
    // scores mirrored traffic, and promotes through the serving
    // hot-swap only when the judge panel clears the gate.
    let trainer = (retrain_every > 0).then(|| {
        let train_cfg = TrainConfig {
            retrain_every,
            shadow_sample,
            gate,
            seed,
            // A short fine-tune per epoch: the candidate starts from the
            // live detector's weights, so a few passes suffice and keep
            // the control loop responsive.
            detector: DetectorConfig {
                epochs: 6,
                ..DetectorConfig::tiny(seed)
            },
            ..TrainConfig::default()
        };
        eprintln!(
            "# trainer armed: retrain every {retrain_every} version(s), \
             shadow 1-in-{shadow_sample}, gate precision {:.2}",
            gate.min_precision
        );
        let oracle = PanelOracle::new(Panel::new(3, 0.0, seed), move |parent, child| {
            world.is_true_hypernym(parent, child)
        });
        Trainer::spawn(
            handle.controller(),
            ControlPlane::new(train_cfg),
            Box::new(oracle),
            LatencyProbe::Wall,
        )
    });

    handle.join();
    eprintln!("# shut down cleanly");
    if let Some(trainer) = trainer {
        let plane = trainer.stop();
        let promoted = plane
            .decisions()
            .iter()
            .filter(|d| matches!(d.verdict, taxo_train::Verdict::Promoted { .. }))
            .count();
        eprintln!(
            "# trainer: {} epoch(s), {} promotion(s), {} rollback(s)",
            plane.epoch(),
            promoted,
            plane.decisions().len() - promoted
        );
    }

    if let Some(path) = &metrics_json {
        match taxo_obs::report::write_json_lines(path) {
            Ok(()) => eprintln!("# metrics written to {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }
    taxo_obs::report::report_if_configured();
}

fn take(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| die(&format!("{flag} takes a value")))
        .clone()
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("invalid numeric value {s:?}")))
}

fn parse_fsync(s: &str) -> FsyncPolicy {
    if s == "always" {
        return FsyncPolicy::Always;
    }
    if s == "batch" {
        return FsyncPolicy::default();
    }
    if let Some(rest) = s.strip_prefix("batch:") {
        let parts: Vec<&str> = rest.split(':').collect();
        if let [ops, ms] = parts[..] {
            return FsyncPolicy::Batch {
                max_ops: parse(ops),
                max_delay: Duration::from_millis(parse(ms)),
            };
        }
    }
    die("--fsync takes always, batch, or batch:<OPS>:<MS>")
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
