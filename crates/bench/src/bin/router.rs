//! `router` — fronts a fleet of taxo-serve shards with the
//! consistent-hash routing tier.
//!
//! ```text
//! router --shards HOST:PORT,HOST:PORT,... [--addr 127.0.0.1:7979]
//!        [--workers N] [--vnodes N] [--seed N] [--shard-retries N]
//!        [--metrics-json PATH]
//! ```
//!
//! Every shard must already be listening: the router probes each one's
//! `health` at startup to seed its version vector and refuses to start
//! if any probe fails. Prints `taxo-router listening on <addr>` once
//! ready, then routes until a `shutdown` request arrives (which it
//! forwards to every shard before draining itself). `--metrics-json
//! PATH` writes the final taxo-obs snapshot — including the
//! `serve.router.*` counters — after shutdown.
//!
//! `--vnodes` and `--seed` shape the consistent-hash ring; every router
//! (and every offline baseline builder) pointed at the same shard list
//! with the same values routes identically.

use std::net::SocketAddr;
use taxo_router::{Router, RouterConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:7979");
    let mut shards: Vec<SocketAddr> = Vec::new();
    let mut cfg = RouterConfig::default();
    let mut metrics_json: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&args, &mut i, "--addr"),
            "--shards" => {
                shards = take(&args, &mut i, "--shards")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("invalid shard address {s:?}")))
                    })
                    .collect();
            }
            "--workers" => cfg.workers = parse(&take(&args, &mut i, "--workers")),
            "--vnodes" => cfg.vnodes = parse(&take(&args, &mut i, "--vnodes")),
            "--seed" => cfg.ring_seed = parse(&take(&args, &mut i, "--seed")),
            "--shard-retries" => {
                cfg.shard_retries = parse(&take(&args, &mut i, "--shard-retries"));
            }
            "--metrics-json" => {
                metrics_json = Some(std::path::PathBuf::from(take(
                    &args,
                    &mut i,
                    "--metrics-json",
                )));
            }
            "--help" | "-h" => {
                println!(
                    "router --shards HOST:PORT,... [--addr HOST:PORT] [--workers N] \
                     [--vnodes N] [--seed N] [--shard-retries N] [--metrics-json PATH]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if shards.is_empty() {
        die("--shards takes a comma-separated list of shard addresses");
    }

    eprintln!("# fronting {} shard(s): {shards:?}", shards.len());
    let handle = Router::builder(shards)
        .config(cfg)
        .bind(addr.as_str())
        .unwrap_or_else(|e| die(&format!("binding {addr}: {e}")));
    println!("taxo-router listening on {}", handle.addr());
    handle.join();
    eprintln!("# shut down cleanly");

    if let Some(path) = &metrics_json {
        match taxo_obs::report::write_json_lines(path) {
            Ok(()) => eprintln!("# metrics written to {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }
    taxo_obs::report::report_if_configured();
}

fn take(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| die(&format!("{flag} takes a value")))
        .clone()
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("invalid numeric value {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
