//! `router` — fronts a fleet of taxo-serve shards with the
//! consistent-hash routing tier.
//!
//! ```text
//! router --shards HOST:PORT,HOST:PORT,... [--addr 127.0.0.1:7979]
//!        [--workers N] [--vnodes N] [--seed N] [--shard-retries N]
//!        [--metrics-json PATH]
//!        [--retrain-every N] [--shadow-sample N] [--promote-gate P[:LAT_US]]
//! ```
//!
//! Every shard must already be listening: the router probes each one's
//! `health` at startup to seed its version vector and refuses to start
//! if any probe fails. Prints `taxo-router listening on <addr>` once
//! ready, then routes until a `shutdown` request arrives (which it
//! forwards to every shard before draining itself). `--metrics-json
//! PATH` writes the final taxo-obs snapshot — including the
//! `serve.router.*` counters — after shutdown.
//!
//! `--vnodes` and `--seed` shape the consistent-hash ring; every router
//! (and every offline baseline builder) pointed at the same shard list
//! with the same values routes identically.
//!
//! The continuous-learning knobs mirror the serve bin's so one launch
//! configuration describes the whole tier. *Enforcement* lives inside
//! each shard process (the taxo-train control plane retrains and gates
//! there, and the serving two-phase publish keeps every promotion atomic
//! per shard); the router's role is fail-fast validation plus a **fleet
//! promotion watchdog**: with `--retrain-every N` armed, a background
//! thread polls each shard's `stats`/`health`, aggregates
//! `train.promotions` / `train.rollbacks` across the fleet into
//! `router.fleet.*` gauges, logs every observed shard promotion, and
//! warns when the fleet's version spread exceeds the retrain window
//! (a shard whose trainer has stalled or was launched without one).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use taxo_router::{Router, RouterConfig};
use taxo_serve::{Client, Reply};
use taxo_train::GateConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:7979");
    let mut shards: Vec<SocketAddr> = Vec::new();
    let mut cfg = RouterConfig::default();
    let mut metrics_json: Option<std::path::PathBuf> = None;
    let mut retrain_every = 0u64;
    let mut shadow_sample = 2u64;
    let mut gate = GateConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&args, &mut i, "--addr"),
            "--shards" => {
                shards = take(&args, &mut i, "--shards")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("invalid shard address {s:?}")))
                    })
                    .collect();
            }
            "--workers" => cfg.workers = parse(&take(&args, &mut i, "--workers")),
            "--vnodes" => cfg.vnodes = parse(&take(&args, &mut i, "--vnodes")),
            "--seed" => cfg.ring_seed = parse(&take(&args, &mut i, "--seed")),
            "--shard-retries" => {
                cfg.shard_retries = parse(&take(&args, &mut i, "--shard-retries"));
            }
            "--metrics-json" => {
                metrics_json = Some(std::path::PathBuf::from(take(
                    &args,
                    &mut i,
                    "--metrics-json",
                )));
            }
            "--retrain-every" => retrain_every = parse(&take(&args, &mut i, "--retrain-every")),
            "--shadow-sample" => shadow_sample = parse(&take(&args, &mut i, "--shadow-sample")),
            "--promote-gate" => {
                gate = GateConfig::parse(&take(&args, &mut i, "--promote-gate"))
                    .unwrap_or_else(|e| die(&format!("--promote-gate: {e}")));
            }
            "--help" | "-h" => {
                println!(
                    "router --shards HOST:PORT,... [--addr HOST:PORT] [--workers N] \
                     [--vnodes N] [--seed N] [--shard-retries N] [--metrics-json PATH] \
                     [--retrain-every N] [--shadow-sample N] [--promote-gate P[:LAT_US]]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if shards.is_empty() {
        die("--shards takes a comma-separated list of shard addresses");
    }

    eprintln!("# fronting {} shard(s): {shards:?}", shards.len());
    let handle = Router::builder(shards.clone())
        .config(cfg)
        .bind(addr.as_str())
        .unwrap_or_else(|e| die(&format!("binding {addr}: {e}")));
    println!("taxo-router listening on {}", handle.addr());

    // Fleet promotion watchdog: each shard enforces the gate itself; the
    // router observes and aggregates so a stalled or misconfigured
    // shard's trainer is visible at the tier front door.
    let watchdog = (retrain_every > 0).then(|| {
        eprintln!(
            "# fleet policy: retrain every {retrain_every} version(s), \
             shadow 1-in-{shadow_sample}, gate precision {:.2} \
             (enforced per shard; watchdog armed)",
            gate.min_precision
        );
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("fleet-watchdog".into())
            .spawn(move || watch_fleet(&shards, retrain_every, &flag))
            .expect("spawn fleet watchdog");
        (stop, thread)
    });

    handle.join();
    eprintln!("# shut down cleanly");
    if let Some((stop, thread)) = watchdog {
        stop.store(true, Ordering::Release);
        let (promotions, rollbacks) = thread.join().expect("fleet watchdog panicked");
        eprintln!("# fleet: {promotions} promotion(s), {rollbacks} rollback(s) observed");
    }

    if let Some(path) = &metrics_json {
        match taxo_obs::report::write_json_lines(path) {
            Ok(()) => eprintln!("# metrics written to {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }
    taxo_obs::report::report_if_configured();
}

/// Polls every shard's `stats` and `health` until stopped, publishing
/// fleet-wide trainer aggregates as gauges and warning when the version
/// spread across shards exceeds the retrain window. Returns the final
/// `(promotions, rollbacks)` totals.
fn watch_fleet(shards: &[SocketAddr], retrain_every: u64, stop: &AtomicBool) -> (u64, u64) {
    let mut last_promotions = vec![0u64; shards.len()];
    let mut spread_warned = false;
    let (mut promotions, mut rollbacks) = (0u64, 0u64);
    while !stop.load(Ordering::Acquire) {
        let mut versions: Vec<u64> = Vec::with_capacity(shards.len());
        let (mut promo_total, mut roll_total) = (0u64, 0u64);
        for (i, addr) in shards.iter().enumerate() {
            // Reconnect per poll: shards may restart under chaos, and at
            // watchdog cadence a fresh connection is cheap.
            let Ok(mut client) = Client::connect(*addr) else {
                continue;
            };
            if let Ok(Reply::Ok(h)) = client.health() {
                if let Some(v) = h.get("version").and_then(taxo_serve::json::Value::as_u64) {
                    versions.push(v);
                }
            }
            if let Ok(Reply::Ok(s)) = client.stats() {
                let counter = |name: &str| {
                    s.get("counters")
                        .and_then(|c| c.get(name))
                        .and_then(taxo_serve::json::Value::as_u64)
                        .unwrap_or(0)
                };
                let p = counter("train.promotions");
                if p > last_promotions[i] {
                    eprintln!("# shard {i} ({addr}) promoted (total {p})");
                }
                last_promotions[i] = p;
                promo_total += p;
                roll_total += counter("train.rollbacks");
            }
        }
        promotions = promo_total;
        rollbacks = roll_total;
        taxo_obs::gauge!("router.fleet.promotions").set(promo_total as i64);
        taxo_obs::gauge!("router.fleet.rollbacks").set(roll_total as i64);
        if versions.len() == shards.len() {
            let spread = versions.iter().max().unwrap() - versions.iter().min().unwrap();
            if spread > retrain_every && !spread_warned {
                eprintln!(
                    "# warning: fleet version spread {spread} exceeds the retrain \
                     window {retrain_every} — a shard's trainer may be stalled or absent"
                );
                spread_warned = true;
            }
        }
        std::thread::sleep(Duration::from_millis(500));
    }
    (promotions, rollbacks)
}

fn take(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| die(&format!("{flag} takes a value")))
        .clone()
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("invalid numeric value {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
