//! Benchmark/reproduction crate: the `repro` binary regenerates every
//! table and figure of the paper (see `repro --help`), and the Criterion
//! benches in `benches/` measure the performance of the code paths behind
//! each artefact.

use taxo_eval::{DomainContext, Scale};
use taxo_synth::WorldConfig;

/// Builds the three paper domains at a scale.
pub fn build_domains(scale: Scale) -> Vec<DomainContext> {
    WorldConfig::all_domains()
        .iter()
        .map(|cfg| DomainContext::build(cfg, scale))
        .collect()
}

/// Builds only the Snack domain (used by the single-domain artefacts:
/// Tables IX, XI, XII, Figs. 3–4).
pub fn build_snack(scale: Scale) -> DomainContext {
    DomainContext::build(&WorldConfig::snack(), scale)
}

/// Parses a `--scale` value.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "quick" => Some(Scale::Quick),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale_values() {
        assert_eq!(parse_scale("quick"), Some(Scale::Quick));
        assert_eq!(parse_scale("full"), Some(Scale::Full));
        assert_eq!(parse_scale("test"), Some(Scale::Test));
        assert_eq!(parse_scale("bogus"), None);
    }
}
