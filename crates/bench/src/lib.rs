//! Benchmark/reproduction crate: the `repro` binary regenerates every
//! table and figure of the paper (see `repro --help`), and the Criterion
//! benches in `benches/` measure the performance of the code paths behind
//! each artefact.

use taxo_eval::{DomainContext, Scale};
use taxo_synth::WorldConfig;

/// Builds the three paper domains at a scale.
pub fn build_domains(scale: Scale) -> Vec<DomainContext> {
    WorldConfig::all_domains()
        .iter()
        .map(|cfg| DomainContext::build(cfg, scale))
        .collect()
}

/// Builds only the Snack domain (used by the single-domain artefacts:
/// Tables IX, XI, XII, Figs. 3–4).
pub fn build_snack(scale: Scale) -> DomainContext {
    DomainContext::build(&WorldConfig::snack(), scale)
}

/// The synthetic world both `serve` and `loadgen` derive from one seed.
/// Keeping this in one place is what lets `loadgen --verify` rebuild the
/// server's exact serving state offline: world generation and pipeline
/// training are fully deterministic given the seed.
pub fn serving_world(
    seed: u64,
) -> (
    taxo_synth::World,
    taxo_synth::ClickLog,
    taxo_synth::UgcCorpus,
) {
    use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};
    let world = World::generate(&WorldConfig {
        target_nodes: 150,
        ..WorldConfig::tiny(seed)
    });
    let log = ClickLog::generate(
        &world,
        &ClickConfig {
            n_events: 8_000,
            ..ClickConfig::tiny(seed)
        },
    );
    let ugc = UgcCorpus::generate(
        &world,
        &UgcConfig {
            n_sentences: 1_500,
            ..UgcConfig::tiny(seed)
        },
    );
    (world, log, ugc)
}

/// Trains the tiny serving pipeline on [`serving_world`] — the model
/// behind the `serve` bin and the `loadgen --verify` offline baseline.
pub fn serving_pipeline(seed: u64) -> (taxo_synth::World, taxo_expand::TrainedPipeline) {
    let (world, log, ugc) = serving_world(seed);
    let trained = taxo_expand::TrainedPipeline::train(
        &world.existing,
        &world.vocab,
        &log.records,
        &ugc.sentences,
        &taxo_expand::PipelineConfig::tiny(seed),
    );
    (world, trained)
}

/// The expansion configuration the serving session runs under (shared by
/// `serve` and `loadgen --verify`; threshold 0.6 so tiny-world ingests
/// visibly attach edges).
pub fn serving_expansion_config() -> taxo_expand::ExpansionConfig {
    taxo_expand::ExpansionConfig::builder()
        .threshold(0.6)
        .build()
        .expect("static serving expansion config is valid")
}

/// Parses a `--scale` value.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "quick" => Some(Scale::Quick),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale_values() {
        assert_eq!(parse_scale("quick"), Some(Scale::Quick));
        assert_eq!(parse_scale("full"), Some(Scale::Full));
        assert_eq!(parse_scale("test"), Some(Scale::Test));
        assert_eq!(parse_scale("bogus"), None);
    }
}
