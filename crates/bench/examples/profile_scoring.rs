//! Ad-hoc wall-clock breakdown of the batched scoring path. Not a
//! benchmark — a debugging aid for kernel work: run with
//! `cargo run --release -p taxo-bench --example profile_scoring`.

use std::time::Instant;
use taxo_bench::build_snack;
use taxo_eval::Scale;
use taxo_expand::BatchScorer;
use taxo_nn::Scratch;

fn main() {
    let ctx = build_snack(Scale::Test);
    let detector = ctx.ours();
    let vocab = &ctx.world.vocab;
    let pairs: Vec<_> = ctx
        .construction
        .pairs
        .iter()
        .take(64)
        .map(|p| (p.query, p.item))
        .collect();

    let mut scorer = BatchScorer::new();
    let mut out = Vec::new();
    // Warm up.
    for _ in 0..3 {
        scorer.score_into(&detector, vocab, &pairs, &mut out);
    }
    const N: usize = 200;
    let t = Instant::now();
    for _ in 0..N {
        scorer.score_into(&detector, vocab, &pairs, &mut out);
    }
    let total = t.elapsed().as_secs_f64() / N as f64;
    println!("score_into total: {:.3} ms", total * 1e3);

    // Encoder-only on the same token workload: rebuild the staged batch
    // by hand (template tokenization) and push it through the encoder.
    let rel = detector.relational.as_ref().expect("relational model");
    let mut ids = Vec::new();
    let mut segs = Vec::new();
    let mut lens = Vec::new();
    for &(q, i) in &pairs {
        let before = ids.len();
        let len = rel.append_pair_ids(vocab, q, i, &mut ids, &mut segs);
        lens.push((before, len));
    }
    // Group by len like the bucketer does.
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (p, &(_, len)) in lens.iter().enumerate() {
        buckets.entry(len).or_default().push(p);
    }
    let mut scratch = Scratch::new();
    let mut bucket_ids = Vec::new();
    let mut bucket_segs = Vec::new();
    let run_encoder =
        |scratch: &mut Scratch, bucket_ids: &mut Vec<u32>, bucket_segs: &mut Vec<u32>| {
            for (len, ps) in &buckets {
                bucket_ids.clear();
                bucket_segs.clear();
                for &p in ps {
                    let (start, l) = lens[p];
                    bucket_ids.extend_from_slice(&ids[start..start + l]);
                    bucket_segs.extend_from_slice(&segs[start..start + l]);
                }
                rel.encoder
                    .forward_batch_into(bucket_ids, bucket_segs, *len, scratch);
            }
        };
    run_encoder(&mut scratch, &mut bucket_ids, &mut bucket_segs);
    let t = Instant::now();
    for _ in 0..N {
        run_encoder(&mut scratch, &mut bucket_ids, &mut bucket_segs);
    }
    let enc = t.elapsed().as_secs_f64() / N as f64;
    println!("encoder-only:     {:.3} ms", enc * 1e3);

    let n_tokens = ids.len();
    let seq_hist: Vec<(usize, usize)> = buckets.iter().map(|(l, ps)| (*l, ps.len())).collect();
    println!("tokens: {n_tokens}, buckets (len × pairs): {seq_hist:?}");

    // Component breakdown on the biggest bucket's shape (seq 8 × 25 pairs
    // = 200 rows × 32): one layernorm, one attention, one ffn.
    use taxo_nn::{BlockScratch, Matrix};
    let rows = 200;
    let seq = 8;
    let h = Matrix::from_fn(rows, 32, |r, c| ((r * 31 + c * 7) % 17) as f32 * 0.1 - 0.8);
    let block = &rel.encoder.blocks[0];
    let mut bs = BlockScratch::default();
    let mut normed = Matrix::zeros(0, 0);
    block.ln1.forward_into(&h, &mut normed);
    let t = Instant::now();
    for _ in 0..N {
        block.ln1.forward_into(&h, &mut normed);
    }
    println!(
        "layernorm 200x32: {:.1} us",
        t.elapsed().as_secs_f64() / N as f64 * 1e6
    );

    block.attn.forward_batch_into(
        &normed,
        seq,
        &mut bs.q,
        &mut bs.k,
        &mut bs.v,
        &mut bs.scores,
        &mut bs.concat,
        &mut bs.attn_out,
    );
    let t = Instant::now();
    for _ in 0..N {
        block.attn.forward_batch_into(
            &normed,
            seq,
            &mut bs.q,
            &mut bs.k,
            &mut bs.v,
            &mut bs.scores,
            &mut bs.concat,
            &mut bs.attn_out,
        );
    }
    println!(
        "attention 200x32 seq8: {:.1} us",
        t.elapsed().as_secs_f64() / N as f64 * 1e6
    );

    block
        .ffn
        .forward_into(&normed, &mut bs.ffn_hidden, &mut bs.ffn_out);
    let t = Instant::now();
    for _ in 0..N {
        block
            .ffn
            .forward_into(&normed, &mut bs.ffn_hidden, &mut bs.ffn_out);
    }
    println!(
        "ffn 200x32: {:.1} us",
        t.elapsed().as_secs_f64() / N as f64 * 1e6
    );

    let w = Matrix::from_fn(32, 32, |r, c| ((r * 13 + c * 5) % 11) as f32 * 0.1 - 0.5);
    let mut o = Matrix::zeros(0, 0);
    normed.matmul_nt_into(&w, &mut o);
    let t = Instant::now();
    for _ in 0..N {
        normed.matmul_nt_into(&w, &mut o);
    }
    println!(
        "matmul_nt 200x32·(32x32)T: {:.1} us",
        t.elapsed().as_secs_f64() / N as f64 * 1e6
    );
}
