//! Benchmarks of the maintenance features: incremental ingestion,
//! threshold calibration, and new-concept mining.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taxo_bench::build_snack;
use taxo_eval::Scale;
use taxo_expand::{
    mine_terms, threshold_for_precision, ExpansionConfig, IncrementalExpander, TermMiningConfig,
};

fn bench_maintenance(c: &mut Criterion) {
    let ctx = build_snack(Scale::Test);
    let ours = ctx.ours();

    c.bench_function("maintenance/incremental_ingest", |bench| {
        bench.iter_batched(
            || {
                IncrementalExpander::new(
                    ours.clone(),
                    ctx.world.existing.clone(),
                    ExpansionConfig::default(),
                )
            },
            |mut session| black_box(session.ingest(&ctx.world.vocab, &ctx.log.records)),
            criterion::BatchSize::LargeInput,
        )
    });

    let scored: Vec<(f32, bool)> = ctx
        .adaptive
        .val
        .iter()
        .map(|p| (ours.score(&ctx.world.vocab, p.parent, p.child), p.label))
        .collect();
    c.bench_function("maintenance/threshold_calibration", |bench| {
        bench.iter(|| black_box(threshold_for_precision(&scored, 0.85)))
    });

    c.bench_function("maintenance/mine_terms", |bench| {
        bench.iter(|| {
            black_box(mine_terms(
                &ctx.world.vocab,
                &ctx.log.records,
                &TermMiningConfig::default(),
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_maintenance
);
criterion_main!(benches);
