//! Kernel-level benchmarks of the threaded matmul layer at the shapes
//! the training paths actually hit, plus larger square shapes where the
//! parallel row-split engages (the kernels stay sequential below the
//! FLOP-count threshold, so the small shapes double as a regression
//! check that the threshold keeps spawn overhead off the hot path).
//!
//! Run sequentially vs threaded to measure the speedup on a multicore
//! host:
//!
//! ```text
//! TAXO_THREADS=1 cargo bench --bench kernels
//! TAXO_THREADS=8 cargo bench --bench kernels
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taxo_nn::Matrix;

fn mat(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7 + seed * 13) % 17) as f32 * 0.125 - 1.0
    })
}

/// Encoder-shaped products: a `max_len × d_model` sequence against
/// `d_model × d_model` projections (the attention/FFN inner loops).
fn bench_encoder_shapes(c: &mut Criterion) {
    let seq = mat(40, 32, 0);
    let w = mat(32, 32, 1);
    c.bench_function("kernels/matmul_40x32_32x32", |b| {
        b.iter(|| black_box(seq.matmul(&w)))
    });
    let other = mat(40, 32, 2);
    c.bench_function("kernels/matmul_nt_40x32_40x32", |b| {
        b.iter(|| black_box(seq.matmul_nt(&other)))
    });
    c.bench_function("kernels/matmul_tn_40x32_40x32", |b| {
        b.iter(|| black_box(seq.matmul_tn(&other)))
    });
}

/// The MLM head: a handful of gathered hidden rows against the whole
/// tied `vocab × d_model` embedding table.
fn bench_mlm_head(c: &mut Criterion) {
    let gathered = mat(8, 32, 3);
    let table = mat(3000, 32, 4);
    c.bench_function("kernels/mlm_logits_matmul_nt_8x32_3000x32", |b| {
        b.iter(|| black_box(gathered.matmul_nt(&table)))
    });
    let dlogits = mat(8, 3000, 5);
    c.bench_function("kernels/mlm_grad_matmul_tn_8x3000_8x32", |b| {
        b.iter(|| black_box(dlogits.matmul_tn(&gathered)))
    });
}

/// GNN-shaped propagation (node features × layer weights) and square
/// shapes above the parallel threshold.
fn bench_large_shapes(c: &mut Criterion) {
    let x = mat(500, 32, 6);
    let w = mat(32, 32, 7);
    c.bench_function("kernels/gnn_matmul_500x32_32x32", |b| {
        b.iter(|| black_box(x.matmul(&w)))
    });
    let a = mat(128, 128, 8);
    let bm = mat(128, 128, 9);
    c.bench_function("kernels/matmul_128x128", |b| {
        b.iter(|| black_box(a.matmul(&bm)))
    });
    let a256 = mat(256, 256, 10);
    let b256 = mat(256, 256, 11);
    c.bench_function("kernels/matmul_256x256", |b| {
        b.iter(|| black_box(a256.matmul(&b256)))
    });
    c.bench_function("kernels/matmul_nt_256x256", |b| {
        b.iter(|| black_box(a256.matmul_nt(&b256)))
    });
    c.bench_function("kernels/matmul_tn_256x256", |b| {
        b.iter(|| black_box(a256.matmul_tn(&b256)))
    });
}

/// Blocked transpose at a skinny training shape and a large square one.
fn bench_transpose(c: &mut Criterion) {
    let skinny = mat(3000, 32, 12);
    c.bench_function("kernels/transpose_3000x32", |b| {
        b.iter(|| black_box(skinny.transpose()))
    });
    let square = mat(512, 512, 13);
    c.bench_function("kernels/transpose_512x512", |b| {
        b.iter(|| black_box(square.transpose()))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(40);
    targets = bench_encoder_shapes, bench_mlm_head, bench_large_shapes, bench_transpose
);
criterion_main!(kernels);
