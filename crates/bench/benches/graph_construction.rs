//! Benchmarks of the data-side pipeline behind Tables I–III: world
//! generation, click-log simulation, graph construction (node
//! identification + IF·IQF² weighting) and self-supervised dataset
//! generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taxo_expand::{construct_graph, generate_dataset, DatasetConfig};
use taxo_graph::WeightScheme;
use taxo_synth::{ClickConfig, ClickLog, World, WorldConfig};

fn bench_world(c: &mut Criterion) {
    let cfg = WorldConfig::prepared_food().scaled(0.25);
    c.bench_function("synth/world_generate_200nodes", |bench| {
        bench.iter(|| black_box(World::generate(&cfg)))
    });
}

fn bench_clicks(c: &mut Criterion) {
    let world = World::generate(&WorldConfig::prepared_food().scaled(0.25));
    let click_cfg = ClickConfig {
        n_events: 10_000,
        ..Default::default()
    };
    c.bench_function("synth/click_log_10k_events", |bench| {
        bench.iter(|| black_box(ClickLog::generate(&world, &click_cfg)))
    });
}

fn bench_construction(c: &mut Criterion) {
    let world = World::generate(&WorldConfig::snack().scaled(0.2));
    let log = ClickLog::generate(
        &world,
        &ClickConfig {
            n_events: 30_000,
            ..Default::default()
        },
    );
    c.bench_function("table1/construct_graph", |bench| {
        bench.iter(|| {
            black_box(construct_graph(
                &world.existing,
                &world.vocab,
                &log.records,
                WeightScheme::IfIqf,
            ))
        })
    });
    let built = construct_graph(
        &world.existing,
        &world.vocab,
        &log.records,
        WeightScheme::IfIqf,
    );
    c.bench_function("table3/generate_dataset", |bench| {
        bench.iter(|| {
            black_box(generate_dataset(
                &world.existing,
                &world.vocab,
                &built.pairs,
                &DatasetConfig::default(),
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_world, bench_clicks, bench_construction
);
criterion_main!(benches);
