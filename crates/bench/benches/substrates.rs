//! Micro-benchmarks of the substrates every experiment runs on: dense
//! matrix ops, the Transformer encoder, GNN propagation, and taxonomy
//! queries.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use taxo_core::{ConceptId, Taxonomy};
use taxo_graph::{GnnKind, GnnStack, HeteroGraphBuilder, WeightScheme};
use taxo_nn::{EncoderConfig, Matrix, TransformerEncoder};

fn bench_matrix(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 64, |r, q| ((r * 7 + q) % 13) as f32 * 0.1);
    let b = Matrix::from_fn(64, 64, |r, q| ((r + q * 5) % 11) as f32 * 0.1);
    c.bench_function("matrix/matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    c.bench_function("matrix/matmul_nt_64x64", |bench| {
        bench.iter(|| black_box(a.matmul_nt(&b)))
    });
    let mut s = a.clone();
    c.bench_function("matrix/softmax_rows_64x64", |bench| {
        bench.iter(|| {
            s.softmax_rows();
            black_box(&s);
        })
    });
}

fn bench_encoder(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let enc = TransformerEncoder::new(EncoderConfig::small(2000), &mut rng);
    let ids: Vec<u32> = (0..16).map(|i| (i * 37 % 1900 + 5) as u32).collect();
    c.bench_function("encoder/forward_seq16_d32_l2", |bench| {
        bench.iter(|| black_box(enc.forward(&ids)))
    });
    let mut enc2 = enc.clone();
    c.bench_function("encoder/mlm_step_seq16", |bench| {
        bench.iter(|| black_box(enc2.mlm_step(&ids, &[(3, 42), (7, 99)])))
    });
}

fn mid_graph() -> taxo_graph::HeteroGraph {
    let mut b = HeteroGraphBuilder::new();
    for i in 0..500u32 {
        b.add_taxonomy_edge(ConceptId(i / 4), ConceptId(i + 1));
        b.add_clicks(
            ConceptId(i / 4),
            ConceptId((i * 13) % 501),
            1 + u64::from(i % 9),
        );
    }
    b.build(WeightScheme::IfIqf)
}

fn bench_gnn(c: &mut Criterion) {
    let g = mid_graph();
    let mut rng = StdRng::seed_from_u64(1);
    let stack = GnnStack::new(GnnKind::Gcn, &[32, 32], &mut rng);
    let x = Matrix::from_fn(g.node_count(), 32, |r, q| ((r + q) % 7) as f32 * 0.1);
    c.bench_function("gnn/gcn_forward_500nodes", |bench| {
        bench.iter(|| black_box(stack.forward(&g, &x)))
    });
    let (_, ctx) = stack.forward(&g, &x);
    let dh = Matrix::from_fn(g.node_count(), 32, |_, _| 0.01);
    let mut stack2 = stack.clone();
    c.bench_function("gnn/gcn_backward_500nodes", |bench| {
        bench.iter(|| black_box(stack2.backward(&g, &ctx, &dh)))
    });
}

fn bench_taxonomy(c: &mut Criterion) {
    let mut taxo = Taxonomy::new();
    for i in 0..2000u32 {
        taxo.add_edge(ConceptId(i / 3), ConceptId(i + 1)).unwrap();
    }
    c.bench_function("taxonomy/is_ancestor_deep", |bench| {
        bench.iter(|| black_box(taxo.is_ancestor(ConceptId(0), ConceptId(1999))))
    });
    c.bench_function("taxonomy/level_order_2000", |bench| {
        bench.iter(|| black_box(taxo_core::LevelOrder::new(&taxo)))
    });
    c.bench_function("taxonomy/transitive_reduction_2000", |bench| {
        bench.iter_batched(
            || taxo.clone(),
            |mut t| black_box(t.transitive_reduction()),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matrix, bench_encoder, bench_gnn, bench_taxonomy
);
criterion_main!(benches);
