//! Benchmarks of the model-side pipeline behind Tables V–IX: MLM
//! pretraining steps, contrastive pretraining, and edge-classifier
//! training/scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taxo_bench::build_snack;
use taxo_eval::{OursVariant, Scale};
use taxo_graph::{pretrain_contrastive, ContrastiveConfig, GnnKind, GnnStack};
use taxo_nn::Matrix;

fn bench_contrastive(c: &mut Criterion) {
    let ctx = build_snack(Scale::Test);
    let mut builder = taxo_graph::HeteroGraphBuilder::new();
    for e in ctx.world.existing.edges() {
        builder.add_taxonomy_edge(e.parent, e.child);
    }
    for p in &ctx.construction.pairs {
        builder.add_clicks(p.query, p.item, p.clicks);
    }
    let graph = builder.build(taxo_graph::WeightScheme::IfIqf);
    let x0 = Matrix::from_fn(graph.node_count(), 32, |r, q| {
        ((r * 3 + q) % 17) as f32 * 0.05
    });
    let cfg = ContrastiveConfig {
        epochs: 1,
        ..Default::default()
    };
    c.bench_function("table9/contrastive_epoch", |bench| {
        bench.iter_batched(
            || {
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
                GnnStack::new(GnnKind::Gcn, &[32, 32], &mut rng)
            },
            |mut stack| black_box(pretrain_contrastive(&graph, &mut stack, &x0, &cfg)),
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_detector(c: &mut Criterion) {
    let ctx = build_snack(Scale::Test);
    // Scoring throughput: this is what Tables V, VII and XII spend their
    // time on (one forward per candidate pair).
    let ours = ctx.ours();
    let pair = ctx.adaptive.test[0];
    c.bench_function("table5/score_one_pair", |bench| {
        bench.iter(|| black_box(ours.score(&ctx.world.vocab, pair.parent, pair.child)))
    });
    // One full (small) training run: Table VI/VIII rows each pay this.
    c.bench_function("table8/train_variant_test_scale", |bench| {
        bench.iter(|| black_box(ctx.train_variant(&OursVariant::full(ctx.scale))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_contrastive, bench_detector
);
criterion_main!(benches);
