//! Benchmarks of the allocation-free inference fast path against the
//! allocating twins it replaces: `*_into` kernels reusing warm buffers,
//! the 8-wide lane primitives under them, the int8 serving tier, and
//! end-to-end pair scoring through [`taxo_expand::BatchScorer`] vs the
//! scalar loop.
//!
//! Kernel benches declare their multiply-accumulate count as
//! `Throughput::Elements`, so every summary line carries a MACs/s
//! column (`Melem/s` = million MACs per second) next to the times.
//!
//! ```text
//! cargo bench --bench fastpath
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use taxo_bench::build_snack;
use taxo_eval::Scale;
use taxo_expand::{BatchScorer, QuantizedDetector};
use taxo_nn::{lanes, Matrix};

fn mat(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7 + seed * 13) % 17) as f32 * 0.125 - 1.0
    })
}

fn vec_f32(len: usize, seed: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 31 + seed * 13) % 17) as f32 * 0.125 - 1.0)
        .collect()
}

/// The arena twins of the encoder-shaped products: identical kernels,
/// but writing into a warm output matrix instead of allocating one.
/// Elements = m·n·k MACs per call.
fn bench_into_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fastpath");
    let seq = mat(40, 32, 0);
    let w = mat(32, 32, 1);
    g.throughput(Throughput::Elements(40 * 32 * 32));
    g.bench_function("matmul_alloc_40x32_32x32", |b| {
        b.iter(|| black_box(seq.matmul(&w)))
    });
    let mut out = Matrix::zeros(40, 32);
    g.bench_function("matmul_into_40x32_32x32", |b| {
        b.iter(|| {
            seq.matmul_into(&w, &mut out);
            black_box(out.data()[0])
        })
    });
    let other = mat(40, 32, 2);
    g.throughput(Throughput::Elements(40 * 40 * 32));
    g.bench_function("matmul_nt_alloc_40x32_40x32", |b| {
        b.iter(|| black_box(seq.matmul_nt(&other)))
    });
    let mut out_nt = Matrix::zeros(40, 40);
    g.bench_function("matmul_nt_into_40x32_40x32", |b| {
        b.iter(|| {
            seq.matmul_nt_into(&other, &mut out_nt);
            black_box(out_nt.data()[0])
        })
    });
    g.finish();
}

/// The 8-wide lane primitives every hot kernel now reduces through, on a
/// ragged (non-multiple-of-8) length to include the tail path.
fn bench_lane_kernels(c: &mut Criterion) {
    const N: usize = 4_093;
    let a = vec_f32(N, 3);
    let b1 = vec_f32(N, 4);
    let b2 = vec_f32(N, 5);
    let b3 = vec_f32(N, 6);
    let b4 = vec_f32(N, 7);
    let mut g = c.benchmark_group("lanes");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("dot_4093", |b| b.iter(|| black_box(lanes::dot(&a, &b1))));
    // dot4 shares one pass over `a` across four rows: 4·N MACs per call.
    g.throughput(Throughput::Elements(4 * N as u64));
    g.bench_function("dot4_4093", |b| {
        b.iter(|| black_box(lanes::dot4(&a, &b1, &b2, &b3, &b4)))
    });
    g.finish();
}

/// End-to-end pair scoring on the trained snack-domain detector: the
/// scalar per-pair loop vs one batched, length-bucketed pass, and the
/// same batched pass through the int8 weight-quantized tier.
/// Elements = pairs scored per call.
fn bench_batched_scoring(c: &mut Criterion) {
    let ctx = build_snack(Scale::Test);
    let detector = ctx.ours();
    let vocab = &ctx.world.vocab;
    let pairs: Vec<_> = ctx
        .construction
        .pairs
        .iter()
        .take(64)
        .map(|p| (p.query, p.item))
        .collect();
    let n = pairs.len() as u64;

    let mut g = c.benchmark_group("fastpath");
    g.throughput(Throughput::Elements(n));
    g.bench_function("score_scalar_64_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &(q, i) in &pairs {
                acc += detector.score(vocab, q, i);
            }
            black_box(acc)
        })
    });

    let mut scorer = BatchScorer::new();
    let mut out = Vec::new();
    g.bench_function("score_batched_64_pairs", |b| {
        b.iter(|| {
            scorer.score_into(&detector, vocab, &pairs, &mut out);
            black_box(out[0])
        })
    });

    let quant = QuantizedDetector::from_detector(Arc::new(detector.clone()));
    g.bench_function("score_batched_int8_64_pairs", |b| {
        b.iter(|| {
            quant.score_into(&mut scorer, vocab, &pairs, &mut out);
            black_box(out[0])
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_into_kernels, bench_lane_kernels, bench_batched_scoring
);
criterion_main!(benches);
