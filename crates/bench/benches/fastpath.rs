//! Benchmarks of the allocation-free inference fast path against the
//! allocating twins it replaces: `*_into` kernels reusing warm buffers,
//! the row-batched encoder forward, and end-to-end pair scoring through
//! [`taxo_expand::BatchScorer`] vs the scalar loop.
//!
//! ```text
//! cargo bench --bench fastpath
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taxo_bench::build_snack;
use taxo_eval::Scale;
use taxo_expand::BatchScorer;
use taxo_nn::Matrix;

fn mat(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7 + seed * 13) % 17) as f32 * 0.125 - 1.0
    })
}

/// The arena twins of the encoder-shaped products: identical kernels,
/// but writing into a warm output matrix instead of allocating one.
fn bench_into_kernels(c: &mut Criterion) {
    let seq = mat(40, 32, 0);
    let w = mat(32, 32, 1);
    c.bench_function("fastpath/matmul_alloc_40x32_32x32", |b| {
        b.iter(|| black_box(seq.matmul(&w)))
    });
    let mut out = Matrix::zeros(40, 32);
    c.bench_function("fastpath/matmul_into_40x32_32x32", |b| {
        b.iter(|| {
            seq.matmul_into(&w, &mut out);
            black_box(out.data()[0])
        })
    });
    let other = mat(40, 32, 2);
    c.bench_function("fastpath/matmul_nt_alloc_40x32_40x32", |b| {
        b.iter(|| black_box(seq.matmul_nt(&other)))
    });
    let mut out_nt = Matrix::zeros(40, 40);
    c.bench_function("fastpath/matmul_nt_into_40x32_40x32", |b| {
        b.iter(|| {
            seq.matmul_nt_into(&other, &mut out_nt);
            black_box(out_nt.data()[0])
        })
    });
}

/// End-to-end pair scoring on the trained snack-domain detector: the
/// scalar per-pair loop vs one batched, length-bucketed pass.
fn bench_batched_scoring(c: &mut Criterion) {
    let ctx = build_snack(Scale::Test);
    let detector = ctx.ours();
    let vocab = &ctx.world.vocab;
    let pairs: Vec<_> = ctx
        .construction
        .pairs
        .iter()
        .take(64)
        .map(|p| (p.query, p.item))
        .collect();

    c.bench_function("fastpath/score_scalar_64_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &(q, i) in &pairs {
                acc += detector.score(vocab, q, i);
            }
            black_box(acc)
        })
    });

    let mut scorer = BatchScorer::new();
    let mut out = Vec::new();
    c.bench_function("fastpath/score_batched_64_pairs", |b| {
        b.iter(|| {
            scorer.score_into(&detector, vocab, &pairs, &mut out);
            black_box(out[0])
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_into_kernels, bench_batched_scoring
);
criterion_main!(benches);
