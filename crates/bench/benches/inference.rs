//! Benchmarks of the inference side behind Table VII, the deployment
//! claim and the user study: top-down expansion, metric evaluation and
//! the search simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taxo_bench::build_snack;
use taxo_eval::{evaluate, Scale};
use taxo_expand::{expand_taxonomy, ExpansionConfig};
use taxo_synth::SearchEngine;

fn bench_inference(c: &mut Criterion) {
    let ctx = build_snack(Scale::Test);
    let ours = ctx.ours();

    c.bench_function("table7/expand_taxonomy", |bench| {
        bench.iter(|| {
            black_box(expand_taxonomy(
                &ours,
                &ctx.world.vocab,
                &ctx.world.existing,
                &ctx.construction.pairs,
                &ExpansionConfig::default(),
            ))
        })
    });

    c.bench_function("table5/evaluate_test_split", |bench| {
        bench.iter(|| {
            black_box(evaluate(
                &ours,
                &ctx.world.vocab,
                &ctx.adaptive.test,
                &ctx.world.existing,
            ))
        })
    });

    let engine = SearchEngine::from_click_log(&ctx.world, &ctx.log);
    let query = ctx.world.name(ctx.world.roots[0]).to_owned();
    c.bench_function("user_study/search_top10", |bench| {
        bench.iter(|| black_box(engine.search_or_popular(&query, 10)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
);
criterion_main!(benches);

// Maintenance-path benches (incremental updates, calibration, mining) are
// in maintenance.rs.
