//! Property-based tests for the neural substrate's algebra.

use proptest::prelude::*;
use taxo_nn::{losses, softmax_in_place, Matrix};

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_is_associative(
        a in small_matrix(3, 4),
        b in small_matrix(4, 2),
        c in small_matrix(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(3, 4),
        b in small_matrix(4, 2),
        c in small_matrix(4, 2),
    ) {
        let mut sum = b.clone();
        sum.add_assign(&c);
        let left = a.matmul(&sum);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involutive(a in small_matrix(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_nt_matches_transpose(a in small_matrix(3, 5), b in small_matrix(4, 5)) {
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_tn_matches_transpose(a in small_matrix(5, 3), b in small_matrix(5, 4)) {
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_is_a_distribution(mut xs in proptest::collection::vec(-20.0f32..20.0, 1..16)) {
        softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_preserves_order(xs in proptest::collection::vec(-5.0f32..5.0, 2..10)) {
        let mut sm = xs.clone();
        softmax_in_place(&mut sm);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] > xs[j] {
                    prop_assert!(sm[i] >= sm[j]);
                }
            }
        }
    }

    #[test]
    fn bce_with_logits_is_nonnegative_and_consistent(
        logit in -10.0f32..10.0,
        target in prop_oneof![Just(0.0f32), Just(1.0f32)],
    ) {
        let (loss, grad) = losses::bce_with_logits(logit, target);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.abs() <= 1.0 + 1e-6);
        // Gradient sign pushes the logit the right way.
        if target == 1.0 {
            prop_assert!(grad <= 0.0 || logit > 0.0);
        }
    }

    #[test]
    fn xent_loss_bounded_below_by_zero(
        data in proptest::collection::vec(-5.0f32..5.0, 12),
        target in 0usize..4,
    ) {
        let logits = Matrix::from_vec(3, 4, data);
        let (loss, dlogits) = losses::softmax_xent(&logits, &[target, 0, 3]);
        prop_assert!(loss >= 0.0);
        // Each gradient row sums to ~0.
        for r in 0..3 {
            let s: f32 = dlogits.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn hstack_vstack_round_trip(a in small_matrix(3, 2), b in small_matrix(3, 4)) {
        let h = Matrix::hstack(&[&a, &b]);
        prop_assert_eq!(h.rows(), 3);
        prop_assert_eq!(h.cols(), 6);
        // Slicing the rows back out preserves content.
        for r in 0..3 {
            prop_assert_eq!(&h.row(r)[..2], a.row(r));
            prop_assert_eq!(&h.row(r)[2..], b.row(r));
        }
        let v = Matrix::vstack(&[&a, &a]);
        prop_assert_eq!(v.rows(), 6);
        prop_assert_eq!(v.slice_rows(3, 3), a);
    }

    #[test]
    fn sum_rows_is_adjoint_of_broadcast(
        x in small_matrix(4, 3),
        bias in small_matrix(1, 3),
    ) {
        // <x + 1·b, y> relationship: check Σ(broadcast) == rows * bias.
        let mut z = Matrix::zeros(4, 3);
        z.add_row_broadcast(&bias);
        let summed = z.sum_rows();
        for c in 0..3 {
            prop_assert!((summed[(0, c)] - 4.0 * bias[(0, c)]).abs() < 1e-4);
        }
        // And sum_rows is linear.
        let mut xy = x.clone();
        xy.add_assign(&z);
        let lhs = xy.sum_rows();
        let mut rhs = x.sum_rows();
        rhs.add_assign(&summed);
        for c in 0..3 {
            prop_assert!((lhs[(0, c)] - rhs[(0, c)]).abs() < 1e-4);
        }
    }
}
