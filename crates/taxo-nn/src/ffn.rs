use crate::activations::{gelu_backward, gelu_forward};
use crate::{Linear, LinearCtx, Matrix, Module, Param};
use rand::rngs::StdRng;

/// The position-wise feed-forward block: `Linear → GELU → Linear`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    pub lin1: Linear,
    pub lin2: Linear,
}

/// Saved activations for one [`FeedForward::forward`] call.
#[derive(Debug, Clone)]
pub struct FeedForwardCtx {
    ctx1: LinearCtx,
    ctx2: LinearCtx,
    pre_act: Matrix,
}

impl FeedForward {
    /// `d_model → hidden → d_model`.
    pub fn new(d_model: usize, hidden: usize, rng: &mut StdRng) -> Self {
        FeedForward {
            lin1: Linear::new(d_model, hidden, rng),
            lin2: Linear::new(hidden, d_model, rng),
        }
    }

    pub fn forward(&self, x: &Matrix) -> (Matrix, FeedForwardCtx) {
        let (pre_act, ctx1) = self.lin1.forward(x);
        let act = gelu_forward(&pre_act);
        let (y, ctx2) = self.lin2.forward(&act);
        (
            y,
            FeedForwardCtx {
                ctx1,
                ctx2,
                pre_act,
            },
        )
    }

    /// Forward-only variant of [`FeedForward::forward`]: `hidden` and
    /// `out` are caller-owned scratch. GELU runs in place over the hidden
    /// buffer through the 8-wide lane kernel — the same elementwise
    /// function as `gelu_forward`, so the result is bitwise identical to
    /// the allocating path.
    pub fn forward_into(&self, x: &Matrix, hidden: &mut Matrix, out: &mut Matrix) {
        self.lin1.forward_into(x, hidden);
        crate::activations::gelu_in_place(hidden.data_mut());
        self.lin2.forward_into(hidden, out);
    }

    pub fn backward(&mut self, ctx: &FeedForwardCtx, dy: &Matrix) -> Matrix {
        let d_act = self.lin2.backward(&ctx.ctx2, dy);
        let d_pre = gelu_backward(&ctx.pre_act, &d_act);
        self.lin1.backward(&ctx.ctx1, &d_pre)
    }
}

impl Module for FeedForward {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let ffn = FeedForward::new(4, 16, &mut rng);
        let x = Matrix::zeros(3, 4);
        let (y, _) = ffn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (3, 4));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let ffn = FeedForward::new(4, 8, &mut rng);
        let x = Matrix::from_fn(2, 4, |r, c| 0.25 * (r as f32) - 0.15 * (c as f32) + 0.05);
        check_gradients(
            ffn,
            x,
            |layer, input| layer.forward(input),
            |layer, ctx, dy| layer.backward(ctx, dy),
            3e-2,
        );
    }
}
