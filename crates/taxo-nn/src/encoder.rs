use crate::{
    losses, BlockCtx, Embedding, EmbeddingCtx, LayerNorm, LayerNormCtx, Matrix, Module, Param,
    TransformerBlock,
};
use rand::rngs::StdRng;

/// Hyper-parameters of the [`TransformerEncoder`].
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    pub vocab_size: usize,
    pub d_model: usize,
    pub n_layers: usize,
    pub n_heads: usize,
    pub ff_hidden: usize,
    pub max_len: usize,
}

impl EncoderConfig {
    /// A small configuration suitable for the synthetic corpora: big enough
    /// to learn concept co-occurrence, small enough for CPU training.
    pub fn small(vocab_size: usize) -> Self {
        EncoderConfig {
            vocab_size,
            d_model: 32,
            n_layers: 2,
            n_heads: 4,
            ff_hidden: 64,
            max_len: 32,
        }
    }

    /// A tiny configuration for tests.
    pub fn tiny(vocab_size: usize) -> Self {
        EncoderConfig {
            vocab_size,
            d_model: 8,
            n_layers: 1,
            n_heads: 2,
            ff_hidden: 16,
            max_len: 16,
        }
    }
}

/// A BERT-style bidirectional Transformer encoder with a masked-language-
/// model head — the substrate standing in for BERT-Chinese. "C-BERT" in
/// the paper is exactly this encoder pretrained with *concept-level*
/// masking on user-generated content (Section III-B1).
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    pub config: EncoderConfig,
    pub tok: Embedding,
    pub pos: Embedding,
    /// Segment (token-type) embeddings distinguishing the two concepts of
    /// a pair input, as in BERT's sentence-A/sentence-B embeddings.
    pub seg: Embedding,
    pub blocks: Vec<TransformerBlock>,
    pub final_ln: LayerNorm,
    /// Output bias of the MLM head; its weight matrix is *tied* to the
    /// token embedding table (as in BERT), which makes the embedding
    /// geometry semantic and greatly improves sample efficiency for a
    /// small from-scratch encoder.
    pub mlm_bias: Param,
}

/// Saved activations for one encoder forward pass.
#[derive(Debug, Clone)]
pub struct EncoderCtx {
    tok_ctx: EmbeddingCtx,
    pos_ctx: EmbeddingCtx,
    seg_ctx: EmbeddingCtx,
    block_ctxs: Vec<BlockCtx>,
    final_ln_ctx: LayerNormCtx,
}

/// One MLM example's pending gradients, produced by the pure
/// [`TransformerEncoder::mlm_forward`] and folded into the parameters by
/// [`TransformerEncoder::mlm_apply`]. Splitting the fused step this way
/// lets a pretraining window run its forwards in parallel while the
/// gradient reduction stays in fixed example order.
pub struct MlmGrads {
    ctx: EncoderCtx,
    /// Gradient w.r.t. the encoder output (masked rows scattered back).
    d_hidden: Matrix,
    /// Tied-head gradient for the token embedding table.
    d_tok_table: Matrix,
    /// Gradient for the MLM output bias.
    d_mlm_bias: Matrix,
}

impl TransformerEncoder {
    pub fn new(config: EncoderConfig, rng: &mut StdRng) -> Self {
        TransformerEncoder {
            config,
            tok: Embedding::new(config.vocab_size, config.d_model, rng),
            pos: Embedding::new(config.max_len, config.d_model, rng),
            seg: Embedding::new(2, config.d_model, rng),
            blocks: (0..config.n_layers)
                .map(|_| {
                    TransformerBlock::new(config.d_model, config.n_heads, config.ff_hidden, rng)
                })
                .collect(),
            final_ln: LayerNorm::new(config.d_model),
            mlm_bias: Param::zeros(1, config.vocab_size),
        }
    }

    /// MLM logits for a batch of hidden rows: `h · Eᵀ + b` with `E` the
    /// tied token embedding table.
    fn mlm_logits(&self, hidden_rows: &Matrix) -> Matrix {
        let mut logits = hidden_rows.matmul_nt(&self.tok.table.value);
        logits.add_row_broadcast(&self.mlm_bias.value);
        logits
    }

    /// Encodes a token-id sequence into per-token hidden states
    /// (`len × d_model`), all tokens in segment 0.
    pub fn forward(&self, ids: &[u32]) -> (Matrix, EncoderCtx) {
        let segments = vec![0u32; ids.len()];
        self.forward_with_segments(ids, &segments)
    }

    /// Encodes with explicit per-token segment ids (0 or 1). Sequences
    /// longer than `max_len` are truncated.
    pub fn forward_with_segments(&self, ids: &[u32], segments: &[u32]) -> (Matrix, EncoderCtx) {
        assert_eq!(ids.len(), segments.len(), "one segment id per token");
        let n = ids.len().min(self.config.max_len);
        let ids = &ids[..n];
        let segments = &segments[..n];
        assert!(!ids.is_empty(), "cannot encode an empty sequence");
        let positions: Vec<u32> = (0..ids.len() as u32).collect();
        let (tok_emb, tok_ctx) = self.tok.forward(ids);
        let (pos_emb, pos_ctx) = self.pos.forward(&positions);
        let (seg_emb, seg_ctx) = self.seg.forward(segments);
        let mut h = tok_emb;
        h.add_assign(&pos_emb);
        h.add_assign(&seg_emb);

        let mut block_ctxs = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (next, ctx) = block.forward(&h);
            h = next;
            block_ctxs.push(ctx);
        }
        let (out, final_ln_ctx) = self.final_ln.forward(&h);
        (
            out,
            EncoderCtx {
                tok_ctx,
                pos_ctx,
                seg_ctx,
                block_ctxs,
                final_ln_ctx,
            },
        )
    }

    /// Forward-only, allocation-free variant of
    /// [`TransformerEncoder::forward_with_segments`] over a batch of
    /// stacked equal-length sequences.
    ///
    /// `ids`/`segments` hold `batch × seq_len` tokens row-major; the
    /// caller has already truncated to `max_len` (so `1 ≤ seq_len ≤
    /// max_len`) and bucketed by length. Per-token hidden states land in
    /// `scratch.enc_out` (`batch·seq_len × d_model`); sequence `s` owns
    /// rows `s*seq_len .. (s+1)*seq_len`.
    ///
    /// Embedding sums run tok → pos → seg per element like the allocating
    /// path, blocks and the final LayerNorm are the `*_into` twins, so
    /// each sequence's rows are bitwise identical to encoding it alone
    /// with [`TransformerEncoder::forward_with_segments`].
    pub fn forward_batch_into(
        &self,
        ids: &[u32],
        segments: &[u32],
        seq_len: usize,
        scratch: &mut crate::scratch::Scratch,
    ) {
        assert_eq!(ids.len(), segments.len(), "one segment id per token");
        assert!(
            seq_len >= 1 && seq_len <= self.config.max_len,
            "seq_len {} out of range 1..={}",
            seq_len,
            self.config.max_len
        );
        assert!(ids.len().is_multiple_of(seq_len), "ragged batch");
        let rows = ids.len();
        let d = self.config.d_model;

        scratch.h.reset_for_overwrite(rows, d);
        for (r, (&id, &seg)) in ids.iter().zip(segments).enumerate() {
            let row = scratch.h.row_mut(r);
            row.copy_from_slice(self.tok.table.value.row(id as usize));
            let pos_row = self.pos.table.value.row(r % seq_len);
            for (a, &b) in row.iter_mut().zip(pos_row) {
                *a += b;
            }
            let seg_row = self.seg.table.value.row(seg as usize);
            for (a, &b) in row.iter_mut().zip(seg_row) {
                *a += b;
            }
        }

        for block in &self.blocks {
            block.forward_batch_in_place(&mut scratch.h, seq_len, &mut scratch.block);
        }
        self.final_ln.forward_into(&scratch.h, &mut scratch.enc_out);
    }

    /// Backpropagates `d_hidden` (gradient w.r.t. the forward output)
    /// through the whole encoder, accumulating parameter gradients.
    pub fn backward(&mut self, ctx: &EncoderCtx, d_hidden: &Matrix) {
        let mut d = self.final_ln.backward(&ctx.final_ln_ctx, d_hidden);
        for (block, bctx) in self.blocks.iter_mut().zip(&ctx.block_ctxs).rev() {
            d = block.backward(bctx, &d);
        }
        self.tok.backward(&ctx.tok_ctx, &d);
        self.pos.backward(&ctx.pos_ctx, &d);
        self.seg.backward(&ctx.seg_ctx, &d);
    }

    /// Convenience: encode and return only the `[CLS]` (first-row) vector,
    /// the representation the paper uses for both relational encoding
    /// (Eq. 7) and node initialisation (Eq. 8).
    pub fn cls_vector(&self, ids: &[u32]) -> Vec<f32> {
        let (h, _) = self.forward(ids);
        h.row(0).to_vec()
    }

    /// One MLM training example: `masked_ids` is the input with `[MASK]`
    /// substitutions already applied; `targets` lists
    /// `(position, original_id)` for every masked slot. Accumulates
    /// gradients for all parameters (including the MLM head) and returns
    /// the mean cross-entropy over the masked slots.
    pub fn mlm_step(&mut self, masked_ids: &[u32], targets: &[(usize, u32)]) -> f32 {
        let (loss, grads) = self.mlm_forward(masked_ids, targets);
        if let Some(g) = &grads {
            self.mlm_apply(g);
        }
        loss
    }

    /// The pure (`&self`) half of [`TransformerEncoder::mlm_step`]:
    /// forward pass plus head-gradient computation, with **no** parameter
    /// mutation. Returns `(loss, None)` when no target position survives
    /// truncation. Several examples can run concurrently; applying the
    /// returned [`MlmGrads`] in a fixed order via
    /// [`TransformerEncoder::mlm_apply`] keeps accumulation deterministic
    /// at any thread count.
    pub fn mlm_forward(
        &self,
        masked_ids: &[u32],
        targets: &[(usize, u32)],
    ) -> (f32, Option<MlmGrads>) {
        let (hidden, ctx) = self.forward(masked_ids);
        let usable: Vec<(usize, u32)> = targets
            .iter()
            .copied()
            .filter(|&(p, _)| p < hidden.rows())
            .collect();
        if usable.is_empty() {
            return (0.0, None);
        }
        // Gather hidden rows at masked positions.
        let gathered =
            Matrix::from_fn(usable.len(), hidden.cols(), |r, c| hidden[(usable[r].0, c)]);
        let logits = self.mlm_logits(&gathered);
        let target_ids: Vec<usize> = usable.iter().map(|&(_, t)| t as usize).collect();
        let (loss, dlogits) = losses::softmax_xent(&logits, &target_ids);
        // Tied-head backward: d_gathered = dlogits · E, dE = dlogitsᵀ · h.
        let d_gathered = dlogits.matmul(&self.tok.table.value);
        let d_tok_table = dlogits.matmul_tn(&gathered);
        let d_mlm_bias = dlogits.sum_rows();
        // Scatter back to a full d_hidden.
        let mut d_hidden = Matrix::zeros(hidden.rows(), hidden.cols());
        for (r, &(p, _)) in usable.iter().enumerate() {
            for c in 0..hidden.cols() {
                d_hidden[(p, c)] += d_gathered[(r, c)];
            }
        }
        (
            loss,
            Some(MlmGrads {
                ctx,
                d_hidden,
                d_tok_table,
                d_mlm_bias,
            }),
        )
    }

    /// The mutating half of [`TransformerEncoder::mlm_step`]: folds one
    /// example's [`MlmGrads`] into the parameter gradients, matching the
    /// accumulation order of the original fused step (head gradients
    /// first, then the encoder backward pass).
    pub fn mlm_apply(&mut self, grads: &MlmGrads) {
        self.tok.table.grad.add_assign(&grads.d_tok_table);
        self.mlm_bias.grad.add_assign(&grads.d_mlm_bias);
        self.backward(&grads.ctx, &grads.d_hidden);
    }

    /// Predicted distribution over the vocabulary at `position` of the
    /// encoded `ids` (used to inspect what MLM pretraining learned).
    pub fn mlm_predict(&self, ids: &[u32], position: usize) -> Vec<f32> {
        let (hidden, _) = self.forward(ids);
        let row = Matrix::from_fn(1, hidden.cols(), |_, c| hidden[(position, c)]);
        let mut logits = self.mlm_logits(&row);
        logits.softmax_rows();
        logits.row(0).to_vec()
    }
}

impl Module for TransformerEncoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        self.seg.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        self.final_ln.visit_params(f);
        f(&mut self.mlm_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adam;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(EncoderConfig::tiny(20), &mut rng);
        let (h, _) = enc.forward(&[1, 5, 6, 2]);
        assert_eq!((h.rows(), h.cols()), (4, 8));
        assert_eq!(enc.cls_vector(&[1, 5, 2]).len(), 8);
    }

    #[test]
    fn truncates_long_sequences() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(EncoderConfig::tiny(20), &mut rng);
        let ids: Vec<u32> = (0..40).map(|i| (i % 18) as u32).collect();
        let (h, _) = enc.forward(&ids);
        assert_eq!(h.rows(), 16); // max_len of tiny config
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(EncoderConfig::tiny(20), &mut rng);
        let _ = enc.forward(&[]);
    }

    /// MLM training on a tiny deterministic corpus must drive the loss
    /// down and learn the co-occurrence: token 10 is always followed by
    /// token 11, so masking position 1 should predict 11.
    #[test]
    fn mlm_learns_a_bigram() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut enc = TransformerEncoder::new(EncoderConfig::tiny(16), &mut rng);
        let mut adam = Adam::new(3e-3);
        let mask = 3u32; // MASK special id convention
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..300 {
            // Sentence: [CLS] 10 11 [SEP]; mask position 2 (the 11).
            let loss = enc.mlm_step(&[1, 10, mask, 2], &[(2, 11)]);
            first_loss.get_or_insert(loss);
            last_loss = loss;
            adam.step(&mut enc);
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.2,
            "loss {first_loss:?} -> {last_loss}"
        );
        let probs = enc.mlm_predict(&[1, 10, mask, 2], 2);
        let argmax = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax, 11);
    }

    /// The batched allocation-free fast path must reproduce the
    /// allocating forward bit for bit, per sequence, including on reuse of
    /// a warm scratch with different shapes in between.
    #[test]
    fn batched_fast_path_matches_allocating_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let enc = TransformerEncoder::new(EncoderConfig::tiny(24), &mut rng);
        let seqs: [&[u32]; 3] = [&[1, 7, 9, 2], &[1, 12, 13, 2], &[1, 20, 5, 2]];
        let segs: [&[u32]; 3] = [&[0, 0, 1, 1], &[0, 1, 1, 1], &[0, 0, 0, 1]];

        let mut scratch = crate::Scratch::new();
        // Warm the scratch on a different shape first: reuse must not leak
        // stale contents into later calls.
        enc.forward_batch_into(&[1, 2], &[0, 0], 2, &mut scratch);

        let flat_ids: Vec<u32> = seqs.concat();
        let flat_segs: Vec<u32> = segs.concat();
        enc.forward_batch_into(&flat_ids, &flat_segs, 4, &mut scratch);

        for (s, (ids, segments)) in seqs.iter().zip(&segs).enumerate() {
            let (h, _) = enc.forward_with_segments(ids, segments);
            for t in 0..4 {
                let fast = scratch.enc_out.row(s * 4 + t);
                let slow = h.row(t);
                for (a, b) in fast.iter().zip(slow) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seq {s} token {t}");
                }
            }
        }
    }

    #[test]
    fn param_count_is_substantial() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut enc = TransformerEncoder::new(EncoderConfig::small(100), &mut rng);
        let n = enc.param_count();
        assert!(n > 10_000, "got {n}");
    }
}
