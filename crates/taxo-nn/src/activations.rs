use crate::Matrix;

/// Branch-free rational tanh (the classic single-precision Padé
/// approximant used by SIMD math libraries): odd 13th-degree numerator
/// over an even 6th-degree denominator, input clamped to ±7.998 where
/// tanh saturates to within float precision. Max error vs `f32::tanh` is
/// a few ULP over the whole clamped range.
///
/// This is the canonical tanh of the GELU path. Unlike `f32::tanh` (an
/// opaque libm call that forces one serial call per element), it is
/// straight-line arithmetic, so the 8-wide lane loops in
/// [`gelu_in_place`] vectorize end to end. It is pure and elementwise,
/// hence trivially deterministic at any thread count.
#[inline]
pub fn tanh_approx(x: f32) -> f32 {
    const CLAMP: f32 = 7.998_811_7;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    // Numerator (odd powers), Horner in x².
    let mut p = -2.760_768_4e-16f32;
    p = p * x2 + 2.000_188e-13;
    p = p * x2 + -8.604_672e-11;
    p = p * x2 + 5.122_297e-8;
    p = p * x2 + 1.485_722_4e-5;
    p = p * x2 + 6.372_619_3e-4;
    p = p * x2 + 4.893_524_6e-3;
    let p = p * x;
    // Denominator (even powers).
    let mut q = 1.198_258_4e-6f32;
    q = q * x2 + 1.185_347_1e-4;
    q = q * x2 + 2.268_434_6e-3;
    q = q * x2 + 4.893_525e-3;
    p / q
}

/// GELU with the tanh approximation (as in BERT), evaluated through the
/// canonical [`tanh_approx`].
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + tanh_approx(C * (x + 0.044715 * x * x * x)))
}

/// d GELU / dx for the tanh approximation (same [`tanh_approx`] as the
/// forward pass, so gradient checks stay consistent).
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044715 * x * x * x;
    let t = tanh_approx(C * (x + x3));
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// GELU over a slice in explicit 8-wide lanes: full chunks load into a
/// `[f32; LANES]` register block (each lane evaluates the same
/// straight-line [`gelu`], so the block vectorizes), the ragged tail runs
/// the identical scalar expression. Elementwise, so bit-identical to
/// `map(gelu)` by construction.
pub fn gelu_in_place(xs: &mut [f32]) {
    use crate::lanes::LANES;
    let split = xs.len() - xs.len() % LANES;
    for chunk in xs[..split].chunks_exact_mut(LANES) {
        let mut lane = [0.0f32; LANES];
        lane.copy_from_slice(chunk);
        for v in lane.iter_mut() {
            *v = gelu(*v);
        }
        chunk.copy_from_slice(&lane);
    }
    for x in &mut xs[split..] {
        *x = gelu(*x);
    }
}

/// Branch-free single-precision `exp` (Cephes-style): range reduction
/// `x = k·ln2 + r` with round-to-nearest via the `1.5·2²³` magic-number
/// trick (baseline x86-64 has no round instruction), a degree-6
/// polynomial on `r ∈ [−ln2/2, ln2/2]`, and a bit-level `2^k` scale.
/// Input is clamped to `[−87.33, 88.0]`, where the result stays a normal
/// `f32`; relative error vs `f32::exp` is a few ULP across that range.
///
/// This is the canonical exponential of the softmax path. Unlike
/// `f32::exp` (an opaque libm call, one serial call per element), it is
/// straight-line arithmetic — clamp, multiply, bit tricks, Horner — so
/// the exp pass over a softmax row vectorizes. Pure and elementwise,
/// hence deterministic at any thread count.
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    const LO: f32 = -87.336_54;
    const HI: f32 = 88.0;
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // Exactly 11_357 / 2¹⁴, so `k·LN2_HI` is exact for |k| < 2¹⁰.
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const MAGIC: f32 = 12_582_912.0; // 1.5 · 2²³
    let x = x.clamp(LO, HI);
    // k = round(x · log2(e)); the add pushes the value into the mantissa
    // range where rounding truncates the fraction, the subtract recovers
    // the rounded integer as a float, and the low mantissa bits of the
    // shifted value are k itself.
    let shifted = x * LOG2E + MAGIC;
    let k = shifted - MAGIC;
    let ki = (shifted.to_bits() as i32).wrapping_sub(0x4B40_0000);
    // r = x − k·ln2, with ln2 split high/low so the product stays exact.
    let r = x - k * LN2_HI - k * LN2_LO;
    // exp(r) ≈ 1 + r + r²·P(r) on the reduced range.
    let mut p = 1.987_569_2e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5e-1;
    let y = p * r * r + r + 1.0;
    y * f32::from_bits(((127 + ki) as u32) << 23)
}

/// `exp_approx(xs[i] − max)` over a slice in explicit 8-wide lanes, the
/// exp pass of the canonical softmax: full chunks evaluate in a
/// `[f32; LANES]` register block, the ragged tail runs the identical
/// scalar expression — bit-identical to a plain `map` by construction.
pub fn exp_shifted_in_place(xs: &mut [f32], max: f32) {
    use crate::lanes::LANES;
    let split = xs.len() - xs.len() % LANES;
    for chunk in xs[..split].chunks_exact_mut(LANES) {
        let mut lane = [0.0f32; LANES];
        lane.copy_from_slice(chunk);
        for v in lane.iter_mut() {
            *v = exp_approx(*v - max);
        }
        chunk.copy_from_slice(&lane);
    }
    for x in &mut xs[split..] {
        *x = exp_approx(*x - max);
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// d sigmoid / dx expressed through the output `s = sigmoid(x)`.
#[inline]
pub fn sigmoid_grad_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// ReLU.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// d ReLU / dx (0 at the kink).
#[inline]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Applies GELU element-wise, returning output and keeping `x` for the
/// backward pass.
pub fn gelu_forward(x: &Matrix) -> Matrix {
    x.map(gelu)
}

/// dL/dx given dL/dy and the forward input.
pub fn gelu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut dx = x.map(gelu_grad);
    dx = dx.hadamard(dy);
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(100.0) - 100.0).abs() < 1e-3);
        assert!(gelu(-100.0).abs() < 1e-3);
        // gelu(1) ~ 0.8412
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_numeric() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            let a = gelu_grad(x);
            let n = numeric_grad(gelu, x);
            assert!((a - n).abs() < 1e-2, "x={x}: {a} vs {n}");
        }
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        let s = sigmoid(0.3);
        let n = numeric_grad(sigmoid, 0.3);
        assert!((sigmoid_grad_from_output(s) - n).abs() < 1e-3);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
    }

    #[test]
    fn tanh_approx_tracks_libm_tanh() {
        let mut x = -9.0f32;
        while x < 9.0 {
            let (a, t) = (tanh_approx(x), x.tanh());
            assert!((a - t).abs() < 1e-5, "x={x}: {a} vs {t}");
            assert!(a.abs() <= 1.0 + 1e-6, "x={x}: out of range {a}");
            x += 0.0137;
        }
        assert_eq!(tanh_approx(0.0), 0.0);
    }

    #[test]
    fn exp_approx_tracks_libm_exp() {
        let mut x = -87.0f32;
        while x < 20.0 {
            let (a, e) = (exp_approx(x), x.exp());
            let rel = ((a - e) / e).abs();
            assert!(rel < 3e-7, "x={x}: {a} vs {e} (rel {rel})");
            x += 0.0173;
        }
        assert_eq!(exp_approx(0.0), 1.0);
        // Clamped deep-underflow inputs stay tiny, positive, and finite.
        let tiny = exp_approx(-1000.0);
        assert!(tiny > 0.0 && tiny < 1e-37);
        assert!(exp_approx(1000.0).is_finite());
    }

    #[test]
    fn exp_shifted_in_place_matches_map_on_ragged_lengths() {
        for n in [1usize, 7, 8, 9, 16, 23, 64, 65] {
            let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.61).cos() * 5.0).collect();
            let max = 5.0f32;
            let want: Vec<u32> = xs.iter().map(|&x| exp_approx(x - max).to_bits()).collect();
            let mut got = xs.clone();
            exp_shifted_in_place(&mut got, max);
            let got: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn gelu_in_place_matches_map_on_ragged_lengths() {
        for n in [1usize, 7, 8, 9, 16, 23, 64, 65] {
            let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
            let want: Vec<u32> = xs.iter().map(|&x| gelu(x).to_bits()).collect();
            let mut got = xs.clone();
            gelu_in_place(&mut got);
            let got: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn matrix_wrappers() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let y = gelu_forward(&x);
        assert!((y[(0, 1)]).abs() < 1e-6);
        let dy = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let dx = gelu_backward(&x, &dy);
        assert!((dx[(0, 2)] - gelu_grad(2.0)).abs() < 1e-6);
    }
}
