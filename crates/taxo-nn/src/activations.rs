use crate::Matrix;

/// GELU with the tanh approximation (as in BERT).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// d GELU / dx for the tanh approximation.
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044715 * x * x * x;
    let t = (C * (x + x3)).tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// d sigmoid / dx expressed through the output `s = sigmoid(x)`.
#[inline]
pub fn sigmoid_grad_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// ReLU.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// d ReLU / dx (0 at the kink).
#[inline]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Applies GELU element-wise, returning output and keeping `x` for the
/// backward pass.
pub fn gelu_forward(x: &Matrix) -> Matrix {
    x.map(gelu)
}

/// dL/dx given dL/dy and the forward input.
pub fn gelu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut dx = x.map(gelu_grad);
    dx = dx.hadamard(dy);
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(100.0) - 100.0).abs() < 1e-3);
        assert!(gelu(-100.0).abs() < 1e-3);
        // gelu(1) ~ 0.8412
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_numeric() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            let a = gelu_grad(x);
            let n = numeric_grad(gelu, x);
            assert!((a - n).abs() < 1e-2, "x={x}: {a} vs {n}");
        }
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        let s = sigmoid(0.3);
        let n = numeric_grad(sigmoid, 0.3);
        assert!((sigmoid_grad_from_output(s) - n).abs() < 1e-3);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
    }

    #[test]
    fn matrix_wrappers() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let y = gelu_forward(&x);
        assert!((y[(0, 1)]).abs() < 1e-6);
        let dy = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let dx = gelu_backward(&x, &dy);
        assert!((dx[(0, 2)] - gelu_grad(2.0)).abs() < 1e-6);
    }
}
