//! Int8 weight-only quantization — the second serving tier.
//!
//! Every weight matrix is stored as `i8` with one `f32` scale per output
//! row (`scale = max_abs(row) / 127`); activations stay `f32` and every
//! accumulation runs in `f32`, in the same canonical 8-wide lane order as
//! the full-precision kernels ([`crate::lanes`]). The result is a forward
//! stack that:
//!
//! * touches 4× less weight memory per GEMM,
//! * is **deterministic**: quantization is a pure function of the `f32`
//!   weights, and scoring through it is bit-identical at any thread
//!   count and any batch shape (same argument as the f32 tier — one
//!   canonical accumulation order, defined by index arithmetic alone),
//! * diverges from the f32 tier by a *bounded* amount: each weight's
//!   round-trip error is at most `scale/2 = max_abs/254`, so each dot
//!   product over `k` inputs diverges by at most
//!   `Σ_k |x_k| · scale_row/2` before non-linearities. The serving layer
//!   measures the realized end-to-end score divergence per snapshot and
//!   reports it (`serve.quant.max_abs_divergence`); property tests here
//!   pin the per-layer bound.
//!
//! Only the forward-only (`*_into`) paths exist in quantized form —
//! training always runs full precision, and a [`QuantEncoder`] /
//! [`QuantMlp`] is built *from* a trained f32 model, never trained
//! itself.

use crate::activations::gelu_in_place;
use crate::activations::sigmoid;
use crate::lanes::{self, LANES};
use crate::scratch::{BlockScratch, Scratch};
use crate::{
    FeedForward, LayerNorm, Linear, Matrix, Mlp, MultiHeadSelfAttention, TransformerBlock,
    TransformerEncoder,
};

/// Canonical lane-order dot of an `f32` activation row against an `i8`
/// weight row: `Σ a[k] · f32::from(w[k])`, lane partition and reduction
/// tree identical to [`lanes::dot`]. The caller applies the row scale
/// once, outside the sum.
#[inline]
pub fn dot_i8(a: &[f32], w: &[i8]) -> f32 {
    debug_assert_eq!(a.len(), w.len());
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (ca, cw) in a[..split]
        .chunks_exact(LANES)
        .zip(w[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += ca[l] * f32::from(cw[l]);
        }
    }
    let mut tail = 0.0f32;
    for (&x, &q) in a[split..].iter().zip(&w[split..]) {
        tail += x * f32::from(q);
    }
    lanes::hsum8(acc) + tail
}

/// A row-major `i8` matrix with one `f32` scale per row:
/// `original[r][c] ≈ data[r][c] · scales[r]`.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// Symmetric per-row quantization: `scale_r = max_abs(row r) / 127`,
    /// `q = round(x / scale_r)` clamped to `[-127, 127]`. An all-zero row
    /// gets scale 0 and all-zero codes (round-trips exactly).
    pub fn quantize(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
            let scale = max_abs / 127.0;
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            scales.push(scale);
            for &v in row {
                data.push((v * inv).round().clamp(-127.0, 127.0) as i8);
            }
        }
        QuantMatrix {
            rows,
            cols,
            data,
            scales,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Quantized row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Scale of row `r`.
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Reconstructs the `f32` matrix (`q · scale` per element).
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.data[r * self.cols + c]) * self.scales[r]
        })
    }

    /// `out = x · selfᵀ` with `self` as the weight matrix (`out × in`
    /// layout, like [`Matrix::matmul_nt`] against a [`Linear`] weight):
    /// f32 accumulation in canonical lane order, one scale multiply per
    /// output element. Allocation-free once `out` is warm.
    pub fn matmul_nt_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.cols, "inner dimensions must match");
        out.reset_for_overwrite(x.rows(), self.rows);
        for i in 0..x.rows() {
            let a_row = x.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = self.scales[j] * dot_i8(a_row, self.row(j));
            }
        }
    }
}

/// Quantized twin of [`Linear`]: int8 weights, f32 bias.
#[derive(Debug, Clone)]
pub struct QuantLinear {
    pub w: QuantMatrix,
    b: Matrix,
}

impl QuantLinear {
    pub fn from_linear(lin: &Linear) -> Self {
        QuantLinear {
            w: QuantMatrix::quantize(&lin.w.value),
            b: lin.b.value.clone(),
        }
    }

    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Mirror of [`Linear::forward_into`].
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        self.w.matmul_nt_into(x, out);
        out.add_row_broadcast(&self.b);
    }
}

/// Quantized twin of [`MultiHeadSelfAttention`] (forward-only).
#[derive(Debug, Clone)]
pub struct QuantAttention {
    wq: QuantLinear,
    wk: QuantLinear,
    wv: QuantLinear,
    wo: QuantLinear,
    n_heads: usize,
}

impl QuantAttention {
    pub fn from_attention(attn: &MultiHeadSelfAttention) -> Self {
        QuantAttention {
            wq: QuantLinear::from_linear(&attn.wq),
            wk: QuantLinear::from_linear(&attn.wk),
            wv: QuantLinear::from_linear(&attn.wv),
            wo: QuantLinear::from_linear(&attn.wo),
            n_heads: attn.n_heads(),
        }
    }

    /// Mirror of [`MultiHeadSelfAttention::forward_batch_into`]: same
    /// loops, same lane-order score dots and softmax, quantized
    /// projections.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_batch_into(
        &self,
        x: &Matrix,
        seq_len: usize,
        q: &mut Matrix,
        k: &mut Matrix,
        v: &mut Matrix,
        scores: &mut Matrix,
        concat: &mut Matrix,
        out: &mut Matrix,
    ) {
        let rows = x.rows();
        assert!(seq_len > 0 && rows.is_multiple_of(seq_len), "ragged batch");
        let batch = rows / seq_len;
        let dh = self.wq.output_dim() / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();

        self.wq.forward_into(x, q);
        self.wk.forward_into(x, k);
        self.wv.forward_into(x, v);

        concat.reset(rows, self.wq.output_dim());
        for s in 0..batch {
            let base = s * seq_len;
            let n = seq_len;
            for h in 0..self.n_heads {
                let off = h * dh;
                scores.reset_for_overwrite(n, n);
                for i in 0..n {
                    let qi = &q.row(base + i)[off..off + dh];
                    let srow = scores.row_mut(i);
                    for (j, s) in srow.iter_mut().enumerate() {
                        let kj = &k.row(base + j)[off..off + dh];
                        *s = lanes::dot(qi, kj) * scale;
                    }
                }
                scores.softmax_rows();
                for i in 0..n {
                    let srow = scores.row(i);
                    let crow = &mut concat.row_mut(base + i)[off..off + dh];
                    for (j, &a) in srow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let vj = &v.row(base + j)[off..off + dh];
                        for (o, &vv) in crow.iter_mut().zip(vj) {
                            *o += a * vv;
                        }
                    }
                }
            }
        }
        self.wo.forward_into(concat, out);
    }
}

/// Quantized twin of [`FeedForward`] (forward-only).
#[derive(Debug, Clone)]
pub struct QuantFeedForward {
    lin1: QuantLinear,
    lin2: QuantLinear,
}

impl QuantFeedForward {
    pub fn from_ffn(ffn: &FeedForward) -> Self {
        QuantFeedForward {
            lin1: QuantLinear::from_linear(&ffn.lin1),
            lin2: QuantLinear::from_linear(&ffn.lin2),
        }
    }

    /// Mirror of [`FeedForward::forward_into`].
    pub fn forward_into(&self, x: &Matrix, hidden: &mut Matrix, out: &mut Matrix) {
        self.lin1.forward_into(x, hidden);
        gelu_in_place(hidden.data_mut());
        self.lin2.forward_into(hidden, out);
    }
}

/// Quantized twin of [`TransformerBlock`] (forward-only). LayerNorms stay
/// full precision — they are parameter-light and their statistics are
/// what keeps the quantization error from compounding across layers.
#[derive(Debug, Clone)]
pub struct QuantBlock {
    ln1: LayerNorm,
    attn: QuantAttention,
    ln2: LayerNorm,
    ffn: QuantFeedForward,
}

impl QuantBlock {
    pub fn from_block(block: &TransformerBlock) -> Self {
        QuantBlock {
            ln1: block.ln1.clone(),
            attn: QuantAttention::from_attention(&block.attn),
            ln2: block.ln2.clone(),
            ffn: QuantFeedForward::from_ffn(&block.ffn),
        }
    }

    /// Mirror of [`TransformerBlock::forward_batch_in_place`].
    pub fn forward_batch_in_place(&self, h: &mut Matrix, seq_len: usize, s: &mut BlockScratch) {
        self.ln1.forward_into(h, &mut s.normed);
        self.attn.forward_batch_into(
            &s.normed,
            seq_len,
            &mut s.q,
            &mut s.k,
            &mut s.v,
            &mut s.scores,
            &mut s.concat,
            &mut s.attn_out,
        );
        h.add_assign(&s.attn_out);

        self.ln2.forward_into(h, &mut s.normed);
        self.ffn
            .forward_into(&s.normed, &mut s.ffn_hidden, &mut s.ffn_out);
        h.add_assign(&s.ffn_out);
    }
}

/// Quantized twin of [`TransformerEncoder`] (forward-only): embeddings
/// and LayerNorms full precision, every projection int8.
#[derive(Debug, Clone)]
pub struct QuantEncoder {
    d_model: usize,
    max_len: usize,
    tok: Matrix,
    pos: Matrix,
    seg: Matrix,
    blocks: Vec<QuantBlock>,
    final_ln: LayerNorm,
}

impl QuantEncoder {
    pub fn from_encoder(enc: &TransformerEncoder) -> Self {
        QuantEncoder {
            d_model: enc.config.d_model,
            max_len: enc.config.max_len,
            tok: enc.tok.table.value.clone(),
            pos: enc.pos.table.value.clone(),
            seg: enc.seg.table.value.clone(),
            blocks: enc.blocks.iter().map(QuantBlock::from_block).collect(),
            final_ln: enc.final_ln.clone(),
        }
    }

    pub fn d_model(&self) -> usize {
        self.d_model
    }

    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Mirror of [`TransformerEncoder::forward_batch_into`]: per-token
    /// hidden states land in `scratch.enc_out`.
    pub fn forward_batch_into(
        &self,
        ids: &[u32],
        segments: &[u32],
        seq_len: usize,
        scratch: &mut Scratch,
    ) {
        assert_eq!(ids.len(), segments.len(), "one segment id per token");
        assert!(
            seq_len >= 1 && seq_len <= self.max_len,
            "seq_len {} out of range 1..={}",
            seq_len,
            self.max_len
        );
        assert!(ids.len().is_multiple_of(seq_len), "ragged batch");
        let rows = ids.len();

        scratch.h.reset_for_overwrite(rows, self.d_model);
        for (r, (&id, &seg)) in ids.iter().zip(segments).enumerate() {
            let row = scratch.h.row_mut(r);
            row.copy_from_slice(self.tok.row(id as usize));
            let pos_row = self.pos.row(r % seq_len);
            for (a, &b) in row.iter_mut().zip(pos_row) {
                *a += b;
            }
            let seg_row = self.seg.row(seg as usize);
            for (a, &b) in row.iter_mut().zip(seg_row) {
                *a += b;
            }
        }

        for block in &self.blocks {
            block.forward_batch_in_place(&mut scratch.h, seq_len, &mut scratch.block);
        }
        self.final_ln.forward_into(&scratch.h, &mut scratch.enc_out);
    }
}

/// Quantized twin of [`Mlp`] (forward-only).
#[derive(Debug, Clone)]
pub struct QuantMlp {
    lin1: QuantLinear,
    lin2: QuantLinear,
}

impl QuantMlp {
    pub fn from_mlp(mlp: &Mlp) -> Self {
        QuantMlp {
            lin1: QuantLinear::from_linear(&mlp.lin1),
            lin2: QuantLinear::from_linear(&mlp.lin2),
        }
    }

    /// Mirror of [`Mlp::forward_into`].
    pub fn forward_into(&self, x: &Matrix, hidden: &mut Matrix, logits: &mut Matrix) {
        self.lin1.forward_into(x, hidden);
        hidden.map_in_place(sigmoid);
        self.lin2.forward_into(hidden, logits);
    }

    /// Mirror of [`Mlp::predict_positive_batch_into`].
    pub fn predict_positive_batch_into(
        &self,
        x: &Matrix,
        hidden: &mut Matrix,
        logits: &mut Matrix,
        out: &mut Vec<f32>,
    ) {
        self.forward_into(x, hidden, logits);
        logits.softmax_rows();
        for r in 0..logits.rows() {
            out.push(logits[(r, 1)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    proptest! {
        /// Per-row scale correctness: `scale = max_abs/127` exactly, the
        /// max-magnitude element encodes to ±127, and every element's
        /// round-trip error is within half a quantization step.
        #[test]
        fn quantize_dequantize_round_trip(
            rows in 1usize..12,
            cols in 1usize..40,
            seed in 0u64..500,
        ) {
            let m = pseudo_random_matrix(rows, cols, seed);
            let q = QuantMatrix::quantize(&m);
            let back = q.dequantize();
            for r in 0..rows {
                let max_abs = m.row(r).iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                prop_assert_eq!(q.scale(r).to_bits(), (max_abs / 127.0).to_bits());
                let max_code = q.row(r).iter().map(|&c| c.unsigned_abs()).max().unwrap();
                if max_abs > 0.0 {
                    prop_assert_eq!(max_code, 127);
                }
                for c in 0..cols {
                    let err = (back[(r, c)] - m[(r, c)]).abs();
                    // Half a step, plus f32 slack on the scale arithmetic.
                    let bound = q.scale(r) * 0.5 + max_abs * 1e-6;
                    prop_assert!(err <= bound, "({r},{c}): err {err} > {bound}");
                }
            }
        }

        /// Divergence bound of the quantized GEMM vs f32 on random
        /// weights: each output element differs by at most
        /// `Σ_k |x_k| · scale_row/2` (plus accumulation slack).
        #[test]
        fn quant_matmul_divergence_is_bounded(
            n in 1usize..6,
            inner in 1usize..24,
            out_dim in 1usize..10,
            seed in 0u64..200,
        ) {
            let x = pseudo_random_matrix(n, inner, seed);
            let w = pseudo_random_matrix(out_dim, inner, seed ^ 0x5555);
            let q = QuantMatrix::quantize(&w);
            let mut got = Matrix::zeros(0, 0);
            q.matmul_nt_into(&x, &mut got);
            let want = x.matmul_nt(&w);
            for i in 0..n {
                let abs_sum: f32 = x.row(i).iter().map(|v| v.abs()).sum();
                for j in 0..out_dim {
                    let err = (got[(i, j)] - want[(i, j)]).abs();
                    let bound = abs_sum * (q.scale(j) * 0.5) + 1e-4;
                    prop_assert!(err <= bound, "({i},{j}): err {err} > {bound}");
                }
            }
        }

        /// `dot_i8` follows the same lane partition as `lanes::dot`: on
        /// codes converted back to f32 the two must agree bit for bit,
        /// including ragged lengths.
        #[test]
        fn dot_i8_matches_lane_dot_on_converted_codes(
            n in 1usize..70,
            seed in 0u64..500,
        ) {
            let a: Vec<f32> = pseudo_random_matrix(1, n, seed).row(0).to_vec();
            let codes: Vec<i8> = (0..n)
                .map(|i| (((seed as usize + 31 * i) % 255) as i32 - 127) as i8)
                .collect();
            let wf: Vec<f32> = codes.iter().map(|&c| f32::from(c)).collect();
            prop_assert_eq!(
                dot_i8(&a, &codes).to_bits(),
                lanes::dot(&a, &wf).to_bits()
            );
        }
    }

    #[test]
    fn quant_matmul_is_deterministic_and_alloc_free_when_warm() {
        let x = pseudo_random_matrix(7, 33, 3);
        let w = pseudo_random_matrix(9, 33, 4);
        let q = QuantMatrix::quantize(&w);
        let mut a = Matrix::zeros(0, 0);
        let mut b = Matrix::zeros(0, 0);
        q.matmul_nt_into(&x, &mut a);
        q.matmul_nt_into(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rows_quantize_exactly() {
        let mut m = pseudo_random_matrix(3, 8, 9);
        for v in m.row_mut(1) {
            *v = 0.0;
        }
        let q = QuantMatrix::quantize(&m);
        assert_eq!(q.scale(1), 0.0);
        assert!(q.row(1).iter().all(|&c| c == 0));
        let back = q.dequantize();
        assert!(back.row(1).iter().all(|&v| v == 0.0));
    }

    /// The full quantized encoder+MLP stack must stay close to the f32
    /// stack on a real (randomly initialised) model.
    #[test]
    fn quant_encoder_tracks_f32_encoder() {
        let mut rng = StdRng::seed_from_u64(17);
        let enc = TransformerEncoder::new(crate::EncoderConfig::tiny(24), &mut rng);
        let qenc = QuantEncoder::from_encoder(&enc);
        let ids: Vec<u32> = vec![1, 7, 9, 2, 1, 12, 13, 2];
        let segs: Vec<u32> = vec![0, 0, 1, 1, 0, 1, 1, 1];
        let mut scratch = Scratch::new();
        let mut qscratch = Scratch::new();
        enc.forward_batch_into(&ids, &segs, 4, &mut scratch);
        qenc.forward_batch_into(&ids, &segs, 4, &mut qscratch);
        let mut max_err = 0.0f32;
        for r in 0..8 {
            for (a, b) in qscratch.enc_out.row(r).iter().zip(scratch.enc_out.row(r)) {
                max_err = max_err.max((a - b).abs());
            }
        }
        assert!(max_err < 0.15, "quantized encoder drifted: {max_err}");
        assert!(max_err > 0.0, "quantization must actually round something");
    }
}
