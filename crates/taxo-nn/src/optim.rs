use crate::{Module, Param};

/// Adam optimiser (Kingma & Ba, 2015) with optional decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    /// Global step counter for bias correction.
    t: u64,
}

impl Adam {
    /// Adam with standard hyper-parameters and the given learning rate.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
        }
    }

    /// Adds decoupled weight decay (AdamW).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update to every parameter of `module` and clears the
    /// gradients.
    pub fn step(&mut self, module: &mut dyn Module) {
        taxo_obs::counter!("nn.optim.steps").inc();
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        module.visit_params(&mut |p: &mut Param| {
            let n = p.value.data().len();
            let value = p.value.data_mut();
            let grad = p.grad.data_mut();
            let m = p.m.data_mut();
            let v = p.v.data_mut();
            for i in 0..n {
                let g = grad[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                value[i] -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * value[i]);
                grad[i] = 0.0;
            }
        });
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Plain SGD, used by small baselines and as a sanity alternative in tests.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one SGD update and clears gradients.
    pub fn step(&mut self, module: &mut dyn Module) {
        let lr = self.lr;
        module.visit_params(&mut |p: &mut Param| {
            let n = p.value.data().len();
            let value = p.value.data_mut();
            let grad = p.grad.data_mut();
            for i in 0..n {
                value[i] -= lr * grad[i];
                grad[i] = 0.0;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    /// A single free parameter as a module.
    struct Scalarish(Param);
    impl Module for Scalarish {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
        }
    }

    /// Minimising f(x) = x² with Adam converges towards 0.
    #[test]
    fn adam_minimises_quadratic() {
        let mut p = Param::zeros(1, 1);
        p.value = Matrix::from_vec(1, 1, vec![5.0]);
        let mut module = Scalarish(p);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let x = module.0.value[(0, 0)];
            module.0.grad = Matrix::from_vec(1, 1, vec![2.0 * x]);
            adam.step(&mut module);
        }
        assert!(module.0.value[(0, 0)].abs() < 1e-2);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut p = Param::zeros(1, 1);
        p.value = Matrix::from_vec(1, 1, vec![3.0]);
        let mut module = Scalarish(p);
        let mut sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let x = module.0.value[(0, 0)];
            module.0.grad = Matrix::from_vec(1, 1, vec![2.0 * x]);
            sgd.step(&mut module);
        }
        assert!(module.0.value[(0, 0)].abs() < 1e-4);
    }

    #[test]
    fn step_clears_gradients() {
        let mut module = Scalarish(Param::zeros(1, 1));
        module.0.grad = Matrix::from_vec(1, 1, vec![1.0]);
        Adam::new(0.01).step(&mut module);
        assert_eq!(module.0.grad[(0, 0)], 0.0);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut p = Param::zeros(1, 1);
        p.value = Matrix::from_vec(1, 1, vec![1.0]);
        let mut module = Scalarish(p);
        let mut adam = Adam::new(0.1).with_weight_decay(0.1);
        for _ in 0..50 {
            adam.step(&mut module); // zero gradient, decay only
        }
        assert!(module.0.value[(0, 0)] < 1.0);
    }
}
