use crate::{Matrix, Module, Param};

/// Layer normalisation over the last dimension with learnable scale γ and
/// shift β, as used throughout the Transformer encoder.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    pub eps: f32,
}

/// Saved statistics for one [`LayerNorm::forward`] call.
#[derive(Debug, Clone)]
pub struct LayerNormCtx {
    /// Normalised input x̂ (before γ/β).
    normalized: Matrix,
    /// Per-row 1/σ.
    inv_std: Vec<f32>,
}

/// Per-row mean and 1/σ in the canonical lane order of [`crate::lanes`].
/// The single shared implementation is what makes `forward` and
/// `forward_into` bitwise identical by construction.
#[inline]
pub(crate) fn row_stats(row: &[f32], eps: f32) -> (f32, f32) {
    let d = row.len();
    let mean = crate::lanes::sum(row) / d as f32;
    let var = crate::lanes::sum_sq_diff(row, mean) / d as f32;
    (mean, 1.0 / (var + eps).sqrt())
}

impl LayerNorm {
    /// γ=1, β=0 layer over vectors of size `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::constant(1, dim, 1.0),
            beta: Param::zeros(1, dim),
            eps: 1e-5,
        }
    }

    /// Normalises each row of `x`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LayerNormCtx) {
        let (n, d) = (x.rows(), x.cols());
        let mut normalized = Matrix::zeros(n, d);
        let mut inv_std = Vec::with_capacity(n);
        let mut out = Matrix::zeros(n, d);
        for r in 0..n {
            let row = x.row(r);
            let (mean, istd) = row_stats(row, self.eps);
            inv_std.push(istd);
            for c in 0..d {
                let xh = (row[c] - mean) * istd;
                normalized[(r, c)] = xh;
                out[(r, c)] = xh * self.gamma.value[(0, c)] + self.beta.value[(0, c)];
            }
        }
        (
            out,
            LayerNormCtx {
                normalized,
                inv_std,
            },
        )
    }

    /// Forward-only variant of [`LayerNorm::forward`]: writes into a
    /// caller-owned buffer and skips the saved statistics. Row statistics
    /// come from the shared [`row_stats`] kernel and the write loop
    /// evaluates the exact same expressions in the same order, so the
    /// output is bitwise identical.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        let (n, d) = (x.rows(), x.cols());
        out.reset_for_overwrite(n, d);
        for r in 0..n {
            let row = x.row(r);
            let (mean, istd) = row_stats(row, self.eps);
            let out_row = out.row_mut(r);
            for c in 0..d {
                let xh = (row[c] - mean) * istd;
                out_row[c] = xh * self.gamma.value[(0, c)] + self.beta.value[(0, c)];
            }
        }
    }

    /// Accumulates dγ, dβ and returns dx.
    pub fn backward(&mut self, ctx: &LayerNormCtx, dout: &Matrix) -> Matrix {
        let (n, d) = (dout.rows(), dout.cols());
        let mut dx = Matrix::zeros(n, d);
        for r in 0..n {
            let xh = ctx.normalized.row(r);
            let dy = dout.row(r);
            // dγ, dβ.
            for c in 0..d {
                self.gamma.grad[(0, c)] += dy[c] * xh[c];
                self.beta.grad[(0, c)] += dy[c];
            }
            // dx̂ = dy ⊙ γ; standard LayerNorm backward:
            // dx = (1/σ)(dx̂ - mean(dx̂) - x̂ · mean(dx̂ ⊙ x̂)).
            let mut dxh = vec![0.0f32; d];
            for c in 0..d {
                dxh[c] = dy[c] * self.gamma.value[(0, c)];
            }
            let mean_dxh = dxh.iter().sum::<f32>() / d as f32;
            let mean_dxh_xh = dxh.iter().zip(xh).map(|(&a, &b)| a * b).sum::<f32>() / d as f32;
            let istd = ctx.inv_std[r];
            for c in 0..d {
                dx[(r, c)] = istd * (dxh[c] - mean_dxh - xh[c] * mean_dxh_xh);
            }
        }
        dx
    }
}

impl Module for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;

    #[test]
    fn rows_are_standardised() {
        let ln = LayerNorm::new(4);
        let x = Matrix::from_vec(2, 4, vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let (y, _) = ln.forward(&x);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y.row(r).iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gamma_beta_applied() {
        let mut ln = LayerNorm::new(2);
        ln.gamma.value = Matrix::from_vec(1, 2, vec![2.0, 2.0]);
        ln.beta.value = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let x = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (y, _) = ln.forward(&x);
        // normalised = [-1, 1] (up to eps), scaled to [-2,2], shifted to [-1,3].
        assert!((y[(0, 0)] + 1.0).abs() < 1e-2);
        assert!((y[(0, 1)] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let ln = LayerNorm::new(5);
        let x = Matrix::from_fn(3, 5, |r, c| (r as f32) * 0.7 - (c as f32) * 0.3 + 0.05);
        check_gradients(
            ln,
            x,
            |layer, input| layer.forward(input),
            |layer, ctx, dy| layer.backward(ctx, dy),
            2e-2,
        );
    }
}
