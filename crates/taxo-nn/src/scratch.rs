//! Reusable workspace buffers for the inference fast path.
//!
//! Every `*_into` / `*_in_place` forward variant in this crate writes into
//! caller-owned [`Matrix`] buffers instead of allocating fresh ones. A
//! [`Scratch`] bundles every buffer one encoder + MLP scoring pass needs,
//! so a caller that keeps a `Scratch` alive performs **zero heap
//! allocations after warm-up**: [`Matrix::reset`] only reallocates when a
//! shape exceeds the largest capacity the buffer has ever held, so once
//! the biggest bucket has been scored once, every later pass reuses the
//! same memory.
//!
//! Lifetime rules:
//! - A `Scratch` is tied to no particular model; it grows to fit whatever
//!   shapes pass through it. Reusing one scratch across models is safe
//!   (buffers are reshaped per call) but wastes capacity.
//! - Buffers hold garbage between calls; every forward variant fully
//!   overwrites what it reads. Never read a scratch field except the ones
//!   documented as outputs of the call that just ran.
//! - A `Scratch` is `Send` but not shareable: one scratch per thread.
//!
//! Bitwise contract: every fast-path variant runs the *same kernels in the
//! same accumulation order* (ascending index) as its allocating twin, so
//! results are bit-identical to the scalar path at any thread count.

use crate::Matrix;

/// Per-layer buffers for one [`crate::TransformerBlock`] forward pass.
#[derive(Debug, Clone, Default)]
pub struct BlockScratch {
    /// LayerNorm output (reused for both LN1 and LN2).
    pub normed: Matrix,
    /// Attention block output before the residual add.
    pub attn_out: Matrix,
    /// Query projection.
    pub q: Matrix,
    /// Key projection.
    pub k: Matrix,
    /// Value projection.
    pub v: Matrix,
    /// Per-head attention scores (`seq_len × seq_len`, reused per head and
    /// per sequence).
    pub scores: Matrix,
    /// Concatenated per-head attention outputs.
    pub concat: Matrix,
    /// FFN hidden activation.
    pub ffn_hidden: Matrix,
    /// FFN output before the residual add.
    pub ffn_out: Matrix,
}

/// All buffers for one encoder + classifier scoring pass.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Hidden states, mutated in place through the transformer blocks.
    pub h: Matrix,
    /// Shared per-block buffers.
    pub block: BlockScratch,
    /// Final-LayerNorm output: the encoder's result
    /// (`batch·seq_len × d_model`).
    pub enc_out: Matrix,
    /// Edge-feature rows assembled by a batch scorer (`n × edge_dim`).
    pub features: Matrix,
    /// MLP hidden activation.
    pub mlp_hidden: Matrix,
    /// MLP logits (`n × 2`); after `predict_positive_batch_into`, holds
    /// per-row class probabilities.
    pub logits: Matrix,
}

impl Scratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Scratch::default()
    }
}
