use crate::{Linear, LinearCtx, Matrix, Module, Param};
use rand::rngs::StdRng;

/// Multi-head scaled-dot-product self-attention over one sequence.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    n_heads: usize,
}

/// Saved activations for one attention forward pass.
#[derive(Debug, Clone)]
pub struct AttentionCtx {
    q_ctx: LinearCtx,
    k_ctx: LinearCtx,
    v_ctx: LinearCtx,
    o_ctx: LinearCtx,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head attention probabilities, each `n × n`.
    probs: Vec<Matrix>,
}

impl MultiHeadSelfAttention {
    /// `d_model` must be divisible by `n_heads`.
    pub fn new(d_model: usize, n_heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must divide into heads");
        MultiHeadSelfAttention {
            wq: Linear::new(d_model, d_model, rng),
            wk: Linear::new(d_model, d_model, rng),
            wv: Linear::new(d_model, d_model, rng),
            wo: Linear::new(d_model, d_model, rng),
            n_heads,
        }
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    fn head_dim(&self) -> usize {
        self.wq.output_dim() / self.n_heads
    }

    /// `x: n × d_model` → `n × d_model`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, AttentionCtx) {
        let n = x.rows();
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let (q, q_ctx) = self.wq.forward(x);
        let (k, k_ctx) = self.wk.forward(x);
        let (v, v_ctx) = self.wv.forward(x);

        let mut concat = Matrix::zeros(n, self.wq.output_dim());
        let mut probs = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let off = h * dh;
            // scores = Qh · Khᵀ * scale — canonical lane-order dots.
            let mut scores = Matrix::zeros(n, n);
            for i in 0..n {
                let qi = &q.row(i)[off..off + dh];
                let srow = scores.row_mut(i);
                for (j, s) in srow.iter_mut().enumerate() {
                    let kj = &k.row(j)[off..off + dh];
                    *s = crate::lanes::dot(qi, kj) * scale;
                }
            }
            scores.softmax_rows();
            // Oh = A · Vh
            for i in 0..n {
                let srow = scores.row(i);
                let crow = &mut concat.row_mut(i)[off..off + dh];
                for (j, &a) in srow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let vj = &v.row(j)[off..off + dh];
                    for (o, &vv) in crow.iter_mut().zip(vj) {
                        *o += a * vv;
                    }
                }
            }
            probs.push(scores);
        }
        let (y, o_ctx) = self.wo.forward(&concat);
        (
            y,
            AttentionCtx {
                q_ctx,
                k_ctx,
                v_ctx,
                o_ctx,
                q,
                k,
                v,
                probs,
            },
        )
    }

    /// Forward-only variant of [`MultiHeadSelfAttention::forward`] over a
    /// batch of `x.rows() / seq_len` stacked equal-length sequences, writing
    /// into caller-owned scratch buffers (`scores` is reused per head and
    /// per sequence).
    ///
    /// Attention never mixes rows across sequences: within each `seq_len`
    /// row slice the score/softmax/weighted-sum loops are the exact loops
    /// of the allocating path, and the q/k/v/o projections are row-wise
    /// GEMMs, so every sequence's output is bitwise identical to encoding
    /// it alone.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_batch_into(
        &self,
        x: &Matrix,
        seq_len: usize,
        q: &mut Matrix,
        k: &mut Matrix,
        v: &mut Matrix,
        scores: &mut Matrix,
        concat: &mut Matrix,
        out: &mut Matrix,
    ) {
        let rows = x.rows();
        assert!(seq_len > 0 && rows.is_multiple_of(seq_len), "ragged batch");
        let batch = rows / seq_len;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        self.wq.forward_into(x, q);
        self.wk.forward_into(x, k);
        self.wv.forward_into(x, v);

        concat.reset(rows, self.wq.output_dim());
        for s in 0..batch {
            let base = s * seq_len;
            let n = seq_len;
            for h in 0..self.n_heads {
                let off = h * dh;
                scores.reset_for_overwrite(n, n);
                for i in 0..n {
                    let qi = &q.row(base + i)[off..off + dh];
                    let srow = scores.row_mut(i);
                    for (j, s) in srow.iter_mut().enumerate() {
                        let kj = &k.row(base + j)[off..off + dh];
                        *s = crate::lanes::dot(qi, kj) * scale;
                    }
                }
                scores.softmax_rows();
                for i in 0..n {
                    let srow = scores.row(i);
                    let crow = &mut concat.row_mut(base + i)[off..off + dh];
                    for (j, &a) in srow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let vj = &v.row(base + j)[off..off + dh];
                        for (o, &vv) in crow.iter_mut().zip(vj) {
                            *o += a * vv;
                        }
                    }
                }
            }
        }
        self.wo.forward_into(concat, out);
    }

    /// Accumulates all projection gradients and returns dx.
    pub fn backward(&mut self, ctx: &AttentionCtx, dy: &Matrix) -> Matrix {
        let n = dy.rows();
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        // Back through the output projection.
        let dconcat = self.wo.backward(&ctx.o_ctx, dy);

        let mut dq = Matrix::zeros(n, self.wq.output_dim());
        let mut dk = Matrix::zeros(n, self.wk.output_dim());
        let mut dv = Matrix::zeros(n, self.wv.output_dim());

        for h in 0..self.n_heads {
            let off = h * dh;
            let probs = &ctx.probs[h];

            // dV_h = Aᵀ · dO_h ; dA = dO_h · V_hᵀ
            let mut d_scores = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let a = probs[(i, j)];
                    let mut d_a = 0.0;
                    for c in 0..dh {
                        let d_o = dconcat[(i, off + c)];
                        dv[(j, off + c)] += a * d_o;
                        d_a += d_o * ctx.v[(j, off + c)];
                    }
                    d_scores[(i, j)] = d_a;
                }
            }
            // Softmax backward per row: ds_j = a_j (dA_j - Σ_k dA_k a_k).
            for i in 0..n {
                let row_a = probs.row(i);
                let dot: f32 = d_scores
                    .row(i)
                    .iter()
                    .zip(row_a)
                    .map(|(&d, &a)| d * a)
                    .sum();
                let ds_row = d_scores.row_mut(i);
                for (ds, &a) in ds_row.iter_mut().zip(row_a) {
                    *ds = a * (*ds - dot);
                }
            }
            // dQ_h = dS · K_h * scale ; dK_h = dSᵀ · Q_h * scale.
            for i in 0..n {
                for j in 0..n {
                    let ds = d_scores[(i, j)] * scale;
                    if ds == 0.0 {
                        continue;
                    }
                    for c in 0..dh {
                        dq[(i, off + c)] += ds * ctx.k[(j, off + c)];
                        dk[(j, off + c)] += ds * ctx.q[(i, off + c)];
                    }
                }
            }
        }

        let mut dx = self.wq.backward(&ctx.q_ctx, &dq);
        dx.add_assign(&self.wk.backward(&ctx.k_ctx, &dk));
        dx.add_assign(&self.wv.backward(&ctx.v_ctx, &dv));
        dx
    }
}

impl Module for MultiHeadSelfAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadSelfAttention::new(8, 2, &mut rng);
        let x = Matrix::from_fn(5, 8, |r, c| ((r * 8 + c) as f32).sin() * 0.3);
        let (y, ctx) = attn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 8));
        // Attention rows are distributions.
        for p in &ctx.probs {
            for r in 0..5 {
                let s: f32 = p.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "heads")]
    fn rejects_indivisible_heads() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiHeadSelfAttention::new(7, 2, &mut rng);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let attn = MultiHeadSelfAttention::new(6, 2, &mut rng);
        let x = Matrix::from_fn(3, 6, |r, c| 0.2 * ((r + 2 * c) as f32).cos());
        check_gradients(
            attn,
            x,
            |layer, input| layer.forward(input),
            |layer, ctx, dy| layer.backward(ctx, dy),
            3e-2,
        );
    }

    #[test]
    fn single_token_sequence_attends_to_itself() {
        let mut rng = StdRng::seed_from_u64(3);
        let attn = MultiHeadSelfAttention::new(4, 1, &mut rng);
        let x = Matrix::from_vec(1, 4, vec![0.1, -0.2, 0.3, 0.4]);
        let (_, ctx) = attn.forward(&x);
        assert_eq!(ctx.probs[0][(0, 0)], 1.0);
    }
}
