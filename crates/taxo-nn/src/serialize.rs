//! Generic parameter (de)serialisation for any [`Module`].
//!
//! Parameters are visited in the module's stable `visit_params` order and
//! written as a small framed binary format (magic, version, per-tensor
//! shape + little-endian `f32` payload). Optimiser state and gradients
//! are deliberately transient: a reload gives exactly the forward
//! behaviour, which is what deployment needs.
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use taxo_nn::{load_params, save_params, Linear, Matrix};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut a = Linear::new(4, 2, &mut rng);
//! let bytes = save_params(&mut a);
//!
//! let mut b = Linear::new(4, 2, &mut rng); // different init
//! load_params(&mut b, &bytes).unwrap();
//! let x = Matrix::zeros(1, 4);
//! assert_eq!(a.forward(&x).0, b.forward(&x).0);
//! ```

use crate::{Matrix, Module, Param};
use std::fmt;

const MAGIC: &[u8; 4] = b"TXNN";
const VERSION: u32 = 1;

/// Errors from [`load_params`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The byte stream does not start with the expected magic/version.
    BadHeader,
    /// The stream ended mid-tensor.
    Truncated,
    /// A stored tensor's shape does not match the module's parameter.
    ShapeMismatch {
        index: usize,
        expected: (usize, usize),
        found: (usize, usize),
    },
    /// The stream holds a different number of tensors than the module.
    CountMismatch { expected: usize, found: usize },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::BadHeader => write!(f, "bad header (not a TXNN v1 stream)"),
            LoadError::Truncated => write!(f, "truncated stream"),
            LoadError::ShapeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "parameter {index}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LoadError::CountMismatch { expected, found } => {
                write!(f, "expected {expected} tensors, found {found}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Serialises every parameter value of `module`.
pub fn save_params(module: &mut dyn Module) -> Vec<u8> {
    let mut tensors: Vec<(usize, usize, Vec<f32>)> = Vec::new();
    module.visit_params(&mut |p: &mut Param| {
        tensors.push((p.value.rows(), p.value.cols(), p.value.data().to_vec()));
    });
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(tensors.len() as u64).to_le_bytes());
    for (rows, cols, data) in tensors {
        out.extend_from_slice(&(rows as u64).to_le_bytes());
        out.extend_from_slice(&(cols as u64).to_le_bytes());
        for v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if self.pos + n > self.bytes.len() {
            return Err(LoadError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, LoadError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }
}

/// Restores parameter values saved by [`save_params`] into `module`,
/// whose architecture (parameter count and shapes) must match.
pub fn load_params(module: &mut dyn Module, bytes: &[u8]) -> Result<(), LoadError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC || r.u32()? != VERSION {
        return Err(LoadError::BadHeader);
    }
    let count = r.u64()? as usize;
    let mut tensors: Vec<Matrix> = Vec::with_capacity(count);
    for _ in 0..count {
        let rows = r.u64()? as usize;
        let cols = r.u64()? as usize;
        let raw = r.take(rows * cols * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        tensors.push(Matrix::from_vec(rows, cols, data));
    }

    // First pass: validate shapes before mutating anything.
    let mut shapes: Vec<(usize, usize)> = Vec::new();
    module.visit_params(&mut |p: &mut Param| shapes.push((p.value.rows(), p.value.cols())));
    if shapes.len() != tensors.len() {
        return Err(LoadError::CountMismatch {
            expected: shapes.len(),
            found: tensors.len(),
        });
    }
    for (i, (shape, t)) in shapes.iter().zip(&tensors).enumerate() {
        if *shape != (t.rows(), t.cols()) {
            return Err(LoadError::ShapeMismatch {
                index: i,
                expected: *shape,
                found: (t.rows(), t.cols()),
            });
        }
    }

    // Second pass: write values and clear transient state.
    let mut it = tensors.into_iter();
    module.visit_params(&mut |p: &mut Param| {
        let t = it.next().expect("counts validated");
        p.value = t;
        p.zero_grad();
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncoderConfig, Mlp, TransformerEncoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_restores_forward_behaviour() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut enc = TransformerEncoder::new(EncoderConfig::tiny(30), &mut rng);
        let bytes = save_params(&mut enc);

        let mut rng2 = StdRng::seed_from_u64(99);
        let mut enc2 = TransformerEncoder::new(EncoderConfig::tiny(30), &mut rng2);
        let ids = [1u32, 7, 9, 2];
        assert_ne!(enc.forward(&ids).0, enc2.forward(&ids).0);
        load_params(&mut enc2, &bytes).unwrap();
        assert_eq!(enc.forward(&ids).0, enc2.forward(&ids).0);
    }

    #[test]
    fn rejects_garbage() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(3, 4, &mut rng);
        assert_eq!(
            load_params(&mut mlp, b"not a stream"),
            Err(LoadError::BadHeader)
        );
        let mut bytes = save_params(&mut mlp);
        bytes.truncate(bytes.len() - 3);
        assert_eq!(load_params(&mut mlp, &bytes), Err(LoadError::Truncated));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut small = Mlp::new(3, 4, &mut rng);
        let mut big = Mlp::new(5, 4, &mut rng);
        let bytes = save_params(&mut small);
        match load_params(&mut big, &bytes) {
            Err(LoadError::ShapeMismatch { index: 0, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let mut tiny_enc = TransformerEncoder::new(EncoderConfig::tiny(10), &mut rng);
        match load_params(&mut tiny_enc, &bytes) {
            Err(LoadError::CountMismatch { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(LoadError::BadHeader.to_string().contains("TXNN"));
        assert!(LoadError::Truncated.to_string().contains("truncated"));
    }
}
