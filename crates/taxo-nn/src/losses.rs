use crate::Matrix;

/// Mean softmax cross-entropy over rows of `logits` against integer
/// `targets`. Returns `(loss, dlogits)` where `dlogits` already includes
/// the `1/n` mean factor.
pub fn softmax_xent(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), targets.len());
    let n = targets.len().max(1) as f32;
    let mut probs = logits.clone();
    probs.softmax_rows();
    let mut loss = 0.0f64;
    let mut dlogits = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        let p = probs[(r, t)].max(1e-12);
        loss -= (p as f64).ln();
        dlogits[(r, t)] -= 1.0;
    }
    dlogits.scale(1.0 / n);
    ((loss / n as f64) as f32, dlogits)
}

/// Binary cross-entropy on a probability `p ∈ (0,1)` against `target ∈
/// {0,1}`. Returns `(loss, dL/dp)`.
pub fn bce(p: f32, target: f32) -> (f32, f32) {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    let loss = -(target * p.ln() + (1.0 - target) * (1.0 - p).ln());
    let grad = (p - target) / (p * (1.0 - p));
    (loss, grad)
}

/// Numerically stable binary cross-entropy on a *logit*. Returns
/// `(loss, dL/dlogit)`; the gradient is simply `sigmoid(logit) - target`.
pub fn bce_with_logits(logit: f32, target: f32) -> (f32, f32) {
    // log(1 + e^x) computed stably.
    let log1p_exp = if logit > 0.0 {
        logit + (-logit).exp().ln_1p()
    } else {
        logit.exp().ln_1p()
    };
    let loss = log1p_exp - target * logit;
    let s = crate::activations::sigmoid(logit);
    (loss, s - target)
}

/// InfoNCE over a similarity matrix (Eq. 10 of the paper): for each anchor
/// row `u`, `L_u = -log( Σ_{v∈pos(u)} e^{s_uv} / Σ_v e^{s_uv} )`. Rows with
/// no positives are skipped. Returns the mean loss over anchors with
/// positives and `dL/dsim`.
pub fn info_nce(sim: &Matrix, positives: &[Vec<usize>]) -> (f32, Matrix) {
    assert_eq!(sim.rows(), positives.len());
    let n_cols = sim.cols();
    let mut dsim = Matrix::zeros(sim.rows(), n_cols);
    let mut loss = 0.0f64;
    let mut anchors = 0usize;
    for (r, pos) in positives.iter().enumerate() {
        if pos.is_empty() {
            continue;
        }
        anchors += 1;
        let row = sim.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let num: f32 = pos.iter().map(|&j| exps[j]).sum();
        loss -= ((num / denom).max(1e-12) as f64).ln();
        // dL/ds_j = softmax_all(j) - [j ∈ pos] * softmax_pos(j)
        for j in 0..n_cols {
            dsim[(r, j)] = exps[j] / denom;
        }
        for &j in pos {
            dsim[(r, j)] -= exps[j] / num;
        }
    }
    let scale = 1.0 / anchors.max(1) as f32;
    dsim.scale(scale);
    ((loss * scale as f64) as f32, dsim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xent_uniform_logits() {
        let logits = Matrix::zeros(2, 4);
        let (loss, d) = softmax_xent(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for r in 0..2 {
            let s: f32 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
        // True class pushed up (negative grad), others down.
        assert!(d[(0, 0)] < 0.0 && d[(0, 1)] > 0.0);
    }

    #[test]
    fn xent_gradient_matches_numeric() {
        let logits = Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.5]);
        let (_, d) = softmax_xent(&logits, &[2]);
        let h = 1e-3;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp[(0, j)] += h;
            let mut lm = logits.clone();
            lm[(0, j)] -= h;
            let n = (softmax_xent(&lp, &[2]).0 - softmax_xent(&lm, &[2]).0) / (2.0 * h);
            assert!((d[(0, j)] - n).abs() < 1e-3, "j={j}");
        }
    }

    #[test]
    fn bce_known_values() {
        let (loss, _) = bce(0.5, 1.0);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-3);
        let (loss_good, _) = bce(0.99, 1.0);
        assert!(loss_good < 0.02);
        let (loss_bad, _) = bce(0.01, 1.0);
        assert!(loss_bad > 4.0);
    }

    #[test]
    fn bce_with_logits_matches_bce() {
        for &(logit, t) in &[(0.7f32, 1.0f32), (-1.2, 0.0), (2.5, 0.0), (0.0, 1.0)] {
            let p = crate::activations::sigmoid(logit);
            let (l1, _) = bce(p, t);
            let (l2, g2) = bce_with_logits(logit, t);
            assert!((l1 - l2).abs() < 1e-4);
            assert!((g2 - (p - t)).abs() < 1e-6);
        }
    }

    #[test]
    fn info_nce_perfect_separation_is_low() {
        // Positives have high similarity, negatives low.
        let sim = Matrix::from_vec(1, 3, vec![10.0, -10.0, -10.0]);
        let (loss, _) = info_nce(&sim, &[vec![0]]);
        assert!(loss < 1e-3);
        let sim_bad = Matrix::from_vec(1, 3, vec![-10.0, 10.0, 10.0]);
        let (loss_bad, _) = info_nce(&sim_bad, &[vec![0]]);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn info_nce_gradient_matches_numeric() {
        let sim = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 0.0, 0.3, -0.4]);
        let pos = vec![vec![1], vec![0, 2]];
        let (_, d) = info_nce(&sim, &pos);
        let h = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut sp = sim.clone();
                sp[(r, c)] += h;
                let mut sm = sim.clone();
                sm[(r, c)] -= h;
                let n = (info_nce(&sp, &pos).0 - info_nce(&sm, &pos).0) / (2.0 * h);
                assert!((d[(r, c)] - n).abs() < 1e-3, "({r},{c})");
            }
        }
    }

    #[test]
    fn info_nce_skips_rows_without_positives() {
        let sim = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let (loss, d) = info_nce(&sim, &[vec![], vec![0]]);
        assert!(loss.is_finite());
        assert_eq!(d.row(0), &[0.0, 0.0]);
    }
}
