use crate::{
    AttentionCtx, FeedForward, FeedForwardCtx, LayerNorm, LayerNormCtx, Matrix, Module,
    MultiHeadSelfAttention, Param,
};
use rand::rngs::StdRng;

/// A pre-LayerNorm Transformer block:
/// `a = x + Attn(LN1(x))`, `y = a + FFN(LN2(a))`.
///
/// Pre-LN keeps gradients stable without a warmup schedule, which matters
/// for a from-scratch substrate trained with plain Adam.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    pub ln1: LayerNorm,
    pub attn: MultiHeadSelfAttention,
    pub ln2: LayerNorm,
    pub ffn: FeedForward,
}

/// Saved activations for one block forward pass.
#[derive(Debug, Clone)]
pub struct BlockCtx {
    ln1_ctx: LayerNormCtx,
    attn_ctx: AttentionCtx,
    ln2_ctx: LayerNormCtx,
    ffn_ctx: FeedForwardCtx,
}

impl TransformerBlock {
    pub fn new(d_model: usize, n_heads: usize, ff_hidden: usize, rng: &mut StdRng) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(d_model),
            attn: MultiHeadSelfAttention::new(d_model, n_heads, rng),
            ln2: LayerNorm::new(d_model),
            ffn: FeedForward::new(d_model, ff_hidden, rng),
        }
    }

    pub fn forward(&self, x: &Matrix) -> (Matrix, BlockCtx) {
        let (normed1, ln1_ctx) = self.ln1.forward(x);
        let (attn_out, attn_ctx) = self.attn.forward(&normed1);
        let mut a = x.clone();
        a.add_assign(&attn_out);

        let (normed2, ln2_ctx) = self.ln2.forward(&a);
        let (ffn_out, ffn_ctx) = self.ffn.forward(&normed2);
        let mut y = a;
        y.add_assign(&ffn_out);
        (
            y,
            BlockCtx {
                ln1_ctx,
                attn_ctx,
                ln2_ctx,
                ffn_ctx,
            },
        )
    }

    /// Forward-only variant of [`TransformerBlock::forward`] over stacked
    /// equal-length sequences, mutating `h` in place with caller-owned
    /// scratch. The residual adds run in the same element order as the
    /// allocating path (`x + attn_out`, then `a + ffn_out`), so the result
    /// is bitwise identical per sequence.
    pub fn forward_batch_in_place(
        &self,
        h: &mut Matrix,
        seq_len: usize,
        s: &mut crate::scratch::BlockScratch,
    ) {
        self.ln1.forward_into(h, &mut s.normed);
        self.attn.forward_batch_into(
            &s.normed,
            seq_len,
            &mut s.q,
            &mut s.k,
            &mut s.v,
            &mut s.scores,
            &mut s.concat,
            &mut s.attn_out,
        );
        h.add_assign(&s.attn_out);

        self.ln2.forward_into(h, &mut s.normed);
        self.ffn
            .forward_into(&s.normed, &mut s.ffn_hidden, &mut s.ffn_out);
        h.add_assign(&s.ffn_out);
    }

    pub fn backward(&mut self, ctx: &BlockCtx, dy: &Matrix) -> Matrix {
        // y = a + ffn(ln2(a)).
        let d_ffn_out = dy;
        let d_normed2 = self.ffn.backward(&ctx.ffn_ctx, d_ffn_out);
        let mut da = self.ln2.backward(&ctx.ln2_ctx, &d_normed2);
        da.add_assign(dy); // residual

        // a = x + attn(ln1(x)).
        let d_attn_out = &da;
        let d_normed1 = self.attn.backward(&ctx.attn_ctx, d_attn_out);
        let mut dx = self.ln1.backward(&ctx.ln1_ctx, &d_normed1);
        dx.add_assign(&da); // residual
        dx
    }
}

impl Module for TransformerBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.ffn.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::SeedableRng;

    #[test]
    fn shapes_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = TransformerBlock::new(8, 2, 16, &mut rng);
        let x = Matrix::from_fn(4, 8, |r, c| ((r + c) as f32 * 0.37).sin());
        let (y, _) = block.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 8));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(21);
        let block = TransformerBlock::new(4, 2, 6, &mut rng);
        let x = Matrix::from_fn(3, 4, |r, c| 0.3 * ((2 * r + c) as f32).cos());
        check_gradients(
            block,
            x,
            |layer, input| layer.forward(input),
            |layer, ctx, dy| layer.backward(ctx, dy),
            4e-2,
        );
    }
}
