//! Fixed-order 8-wide f32 lane primitives — the workspace's canonical
//! reduction kernels.
//!
//! # Why explicit lanes
//!
//! LLVM will happily auto-vectorize *elementwise* loops, but it must not
//! (and does not) auto-vectorize `f32` *reductions*: reassociating a sum
//! changes its rounding, so a scalar `acc += a[k] * b[k]` loop compiles
//! to a serial dependency chain, one multiply-add per iteration. Every
//! dot product behind [`crate::Matrix::matmul_nt`], every LayerNorm
//! mean/variance, and every softmax denominator in this crate used to pay
//! that chain.
//!
//! These kernels restructure each reduction around an explicit
//! `[f32; LANES]` accumulator: lane `l` sums elements `l, l+8, l+16, …`
//! (a strided partition of the input), and the partials collapse through
//! the fixed pairwise tree [`hsum8`]. Elements past the last full chunk
//! accumulate in ascending order into a separate tail sum, added after
//! the tree. The lane loop has no cross-iteration dependency, so it
//! vectorizes on any SIMD width that divides 8 — two 4-wide ops on
//! baseline x86-64, one 8-wide op under AVX.
//!
//! # Determinism contract
//!
//! The lane partition and the reduction tree are *defined by index
//! arithmetic only*: they do not depend on thread count, batch shape,
//! SIMD width, or buffer reuse. Each input element joins exactly one
//! partial sum, in a position fixed by its index, so every call site
//! computes one canonical result — bit-identical at `TAXO_THREADS=1` and
//! `TAXO_THREADS=8`, scalar or batched. The `*_ref` twins below compute
//! the same partials with plain strided scalar loops (no slice chunking,
//! nothing for the vectorizer to work with) and must agree bit for bit;
//! property tests in this module and in `matrix.rs` pin that down on
//! ragged (non-multiple-of-8) lengths.

/// Lane width of every canonical reduction in this crate.
pub const LANES: usize = 8;

/// The fixed pairwise reduction tree over one lane accumulator:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. This exact association is
/// part of the workspace's numeric contract; do not "simplify" it into a
/// sequential fold.
#[inline(always)]
pub fn hsum8(l: [f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Canonical dot product `Σ a[k]·b[k]` in lane order.
///
/// Panics in debug builds if the lengths differ; callers pass
/// equal-length rows.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in a[split..].iter().zip(&b[split..]) {
        tail += x * y;
    }
    hsum8(acc) + tail
}

/// Four canonical dot products of one activation row against four weight
/// rows in a single pass: `[dot(a,b0), dot(a,b1), dot(a,b2), dot(a,b3)]`,
/// bit for bit.
///
/// This is register blocking, not a numeric change: each output keeps
/// its own lane accumulator, fed in the same chunk order as [`dot`] and
/// collapsed through the same [`hsum8`] tree. Blocking amortizes the
/// loads of `a` across four reductions and — the real win — gives the
/// CPU four independent add chains where the single-chain [`dot`] is
/// bound by floating-point add latency.
///
/// On x86-64 the lane loop is written with SSE2 intrinsics (baseline
/// features, no runtime detection needed): LLVM's SLP vectorizer insists
/// on transposing the four symmetric streams into shuffle-heavy code,
/// while the intrinsic form pins the plain 8-accumulator loop. The
/// intrinsics perform the same IEEE multiplies and adds in the same
/// order as the portable fallback, so both are bit-identical; a property
/// test pins `dot4` to four independent `dot` calls.
pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let n = a.len();
    assert!(b0.len() == n && b1.len() == n && b2.len() == n && b3.len() == n);
    #[cfg(target_arch = "x86_64")]
    {
        use core::arch::x86_64::{
            _mm_add_ps, _mm_loadu_ps, _mm_mul_ps, _mm_setzero_ps, _mm_storeu_ps,
        };
        let split = n - n % LANES;
        // SAFETY: every pointer read below is within `..split <= n`, and
        // all five slices were just asserted to have length `n`.
        unsafe {
            let mut lo = [_mm_setzero_ps(); 4];
            let mut hi = [_mm_setzero_ps(); 4];
            let rows = [b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr()];
            let mut k = 0;
            while k < split {
                let alo = _mm_loadu_ps(a.as_ptr().add(k));
                let ahi = _mm_loadu_ps(a.as_ptr().add(k + 4));
                for (r, row) in rows.iter().enumerate() {
                    let blo = _mm_loadu_ps(row.add(k));
                    let bhi = _mm_loadu_ps(row.add(k + 4));
                    lo[r] = _mm_add_ps(lo[r], _mm_mul_ps(alo, blo));
                    hi[r] = _mm_add_ps(hi[r], _mm_mul_ps(ahi, bhi));
                }
                k += LANES;
            }
            let mut out = [0.0f32; 4];
            for r in 0..4 {
                let mut acc = [0.0f32; LANES];
                _mm_storeu_ps(acc.as_mut_ptr(), lo[r]);
                _mm_storeu_ps(acc.as_mut_ptr().add(4), hi[r]);
                out[r] = hsum8(acc);
            }
            // Tail sums accumulate separately and join after the tree,
            // exactly as in [`dot`].
            let mut tail = [0.0f32; 4];
            for k in split..n {
                let x = a[k];
                tail[0] += x * b0[k];
                tail[1] += x * b1[k];
                tail[2] += x * b2[k];
                tail[3] += x * b3[k];
            }
            for r in 0..4 {
                out[r] += tail[r];
            }
            out
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        [dot(a, b0), dot(a, b1), dot(a, b2), dot(a, b3)]
    }
}

/// Canonical sum `Σ xs[k]` in lane order.
#[inline]
pub fn sum(xs: &[f32]) -> f32 {
    let split = xs.len() - xs.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for chunk in xs[..split].chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] += chunk[l];
        }
    }
    let mut tail = 0.0f32;
    for &x in &xs[split..] {
        tail += x;
    }
    hsum8(acc) + tail
}

/// Canonical centered sum of squares `Σ (xs[k]-mean)²` in lane order —
/// the LayerNorm variance numerator.
#[inline]
pub fn sum_sq_diff(xs: &[f32], mean: f32) -> f32 {
    let split = xs.len() - xs.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for chunk in xs[..split].chunks_exact(LANES) {
        for l in 0..LANES {
            let d = chunk[l] - mean;
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for &x in &xs[split..] {
        let d = x - mean;
        tail += d * d;
    }
    hsum8(acc) + tail
}

/// Maximum element (lane partials, pairwise-tree collapse). `f32::max`
/// is associative and commutative over non-NaN inputs, so this equals
/// the sequential fold bit for bit; the lane shape only removes the
/// serial dependency chain. Returns `f32::NEG_INFINITY` on empty input.
#[inline]
pub fn max(xs: &[f32]) -> f32 {
    let split = xs.len() - xs.len() % LANES;
    let mut acc = [f32::NEG_INFINITY; LANES];
    for chunk in xs[..split].chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] = acc[l].max(chunk[l]);
        }
    }
    let mut m = ((acc[0].max(acc[1])).max(acc[2].max(acc[3])))
        .max((acc[4].max(acc[5])).max(acc[6].max(acc[7])));
    for &x in &xs[split..] {
        m = m.max(x);
    }
    m
}

/// Scalar reference for [`dot`]: the same strided lane partition and the
/// same reduction tree, written as a plain indexed loop the vectorizer
/// has no chunked shape to exploit. Exists so tests can pin the lane
/// kernels to an independently-written oracle.
pub fn dot_ref(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for k in 0..split {
        acc[k % LANES] += a[k] * b[k];
    }
    let mut tail = 0.0f32;
    for k in split..a.len() {
        tail += a[k] * b[k];
    }
    hsum8(acc) + tail
}

/// Scalar reference for [`sum`]; see [`dot_ref`].
pub fn sum_ref(xs: &[f32]) -> f32 {
    let split = xs.len() - xs.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for k in 0..split {
        acc[k % LANES] += xs[k];
    }
    let mut tail = 0.0f32;
    for &x in &xs[split..] {
        tail += x;
    }
    hsum8(acc) + tail
}

/// Scalar reference for [`sum_sq_diff`]; see [`dot_ref`].
pub fn sum_sq_diff_ref(xs: &[f32], mean: f32) -> f32 {
    let split = xs.len() - xs.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for k in 0..split {
        let d = xs[k] - mean;
        acc[k % LANES] += d * d;
    }
    let mut tail = 0.0f32;
    for &x in &xs[split..] {
        let d = x - mean;
        tail += d * d;
    }
    hsum8(acc) + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn hsum8_is_the_documented_tree() {
        let l = [1e8f32, -1e8, 3.0, 0.25, -7.5, 2.5, 1e-3, 4.0];
        let want = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
        assert_eq!(hsum8(l).to_bits(), want.to_bits());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(max(&[]), f32::NEG_INFINITY);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(sum(&[4.0, 0.5]), 4.5);
        assert_eq!(max(&[-3.0, -1.0, -2.0]), -1.0);
    }

    proptest! {
        /// Lane kernels must match their scalar-reference twins bit for
        /// bit on ragged (non-multiple-of-8) lengths.
        #[test]
        fn lane_kernels_match_scalar_refs_on_ragged_lengths(
            n in 1usize..70,
            seed in 0u64..1000,
        ) {
            let a = pseudo_random(n, seed);
            let b = pseudo_random(n, seed ^ 0xABCD);
            prop_assert_eq!(dot(&a, &b).to_bits(), dot_ref(&a, &b).to_bits());
            prop_assert_eq!(sum(&a).to_bits(), sum_ref(&a).to_bits());
            let mean = sum(&a) / n as f32;
            prop_assert_eq!(
                sum_sq_diff(&a, mean).to_bits(),
                sum_sq_diff_ref(&a, mean).to_bits()
            );
        }

        /// `dot4` is pure register blocking: bit-identical to four
        /// independent `dot` calls, including ragged lengths.
        #[test]
        fn dot4_matches_four_dots(n in 1usize..70, seed in 0u64..500) {
            let a = pseudo_random(n, seed);
            let bs: Vec<Vec<f32>> =
                (0..4).map(|i| pseudo_random(n, seed ^ (0x1111 * (i + 1)))).collect();
            let got = dot4(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
            for i in 0..4 {
                prop_assert_eq!(got[i].to_bits(), dot(&a, &bs[i]).to_bits());
            }
        }

        /// Lane max equals the sequential fold exactly (associativity of
        /// max over non-NaN inputs).
        #[test]
        fn lane_max_matches_sequential_fold(n in 1usize..70, seed in 0u64..1000) {
            let xs = pseudo_random(n, seed);
            let seq = xs.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            prop_assert_eq!(max(&xs).to_bits(), seq.to_bits());
        }
    }
}
