use std::fmt;
use std::ops::{Index, IndexMut};

use crate::parallel;

/// Minimum multiply-accumulate count before a matmul kernel spawns
/// threads. Below this the spawn overhead of a scoped-thread fan-out
/// (tens of microseconds) dominates the arithmetic, so the kernels fall
/// back to the sequential loop. `1 << 20` MACs is roughly a
/// `128 × 64 · 64 × 128` product.
const PAR_MIN_MACS: usize = 1 << 20;

/// Tile edge for the blocked [`Matrix::transpose`]: 32×32 f32 tiles (4 KiB
/// read + 4 KiB write) sit comfortably in L1 on every current core.
const TRANSPOSE_BLOCK: usize = 32;

/// One output row of `a · b`: `out_row[j] = Σ_k a_row[k] * b[k][j]`,
/// accumulated in ascending `k` — the shared inner kernel of the
/// sequential and row-parallel `matmul` paths, so both produce bitwise
/// identical rows. Dense: no zero-skip branch, the inner loop
/// auto-vectorises instead of branching per scalar.
#[inline]
fn matmul_row(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    for (k, &a) in a_row.iter().enumerate() {
        let b_row = b.row(k);
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += a * bv;
        }
    }
}

/// One output row of `a · bᵀ`: independent dot products in the canonical
/// 8-wide lane order of [`crate::lanes::dot`]. Columns go four at a time
/// through the register-blocked [`crate::lanes::dot4`] (bit-identical to
/// four `dot` calls, one pass over `a_row`, four independent add chains),
/// with a `dot` loop for the ragged remainder. Shared by the sequential
/// and row-parallel `matmul_nt` paths, so thread count never changes the
/// accumulation order of any output element.
#[inline]
fn matmul_nt_row(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    let blocks = out_row.len() / 4 * 4;
    let mut j = 0;
    while j < blocks {
        let d = crate::lanes::dot4(a_row, b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
        out_row[j..j + 4].copy_from_slice(&d);
        j += 4;
    }
    for (o, jj) in out_row[blocks..].iter_mut().zip(blocks..) {
        *o = crate::lanes::dot(a_row, b.row(jj));
    }
}

/// A dense row-major `f32` matrix — the only tensor type the workspace
/// needs. Sequences are `(len × d_model)`, parameter matrices are
/// `(out × in)`, node-embedding tables are `(nodes × d)`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes `self` to `rows × cols`, reusing the existing buffer.
    /// Contents are reset to zero. Allocates only when the new shape needs
    /// more capacity than the buffer ever had — the warm-up contract of
    /// the inference scratch arena: after the largest shape has been seen
    /// once, every later reshape is allocation-free.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let need = rows * cols;
        self.data.clear();
        self.data.resize(need, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Reshapes like [`Matrix::reset`] but skips the zero fill when the
    /// buffer already holds exactly `rows · cols` elements. For outputs
    /// whose every element the caller assigns (`out[i][j] = …`) the
    /// memset is pure waste on the hot serving path. Contents are
    /// unspecified on return — callers must overwrite everything; any
    /// kernel that *accumulates* (`+=`) keeps using [`Matrix::reset`].
    pub fn reset_for_overwrite(&mut self, rows: usize, cols: usize) {
        let need = rows * cols;
        if self.data.len() != need {
            self.data.clear();
            self.data.resize(need, 0.0);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Copies `other` into `self`, reshaping via [`Matrix::reset`] (so the
    /// buffer is reused; see its warm-up contract).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.reset(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix product `self · other`.
    ///
    /// Row-parallel above [`PAR_MIN_MACS`] multiply-accumulates: each
    /// thread owns a contiguous block of output rows and runs the same
    /// i-k-j row kernel as the sequential path, so the result is bitwise
    /// identical at any thread count.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-owned output (reshaped via
    /// [`Matrix::reset`], so warm buffers are reused without allocating).
    /// Runs the identical row kernel with the identical parallel gating,
    /// so the result is bitwise equal to `matmul` at any thread count.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset(self.rows, other.cols);
        let cols = other.cols;
        let macs = self.rows * self.cols * cols;
        if parallel::threads() > 1 && macs >= PAR_MIN_MACS && self.rows > 1 {
            parallel::par_row_chunks_mut(&mut out.data, cols, |first_row, chunk| {
                for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                    matmul_row(self.row(first_row + r), other, out_row);
                }
            });
        } else {
            // i-k-j loop order: streams through `other` rows, cache friendly.
            for i in 0..self.rows {
                let out_row = &mut out.data[i * cols..(i + 1) * cols];
                matmul_row(self.row(i), other, out_row);
            }
        }
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// Row-parallel above [`PAR_MIN_MACS`] multiply-accumulates; each
    /// output row is a set of dot products owned by one thread, bitwise
    /// identical to the sequential path.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing into a caller-owned output (reshaped
    /// via [`Matrix::reset`]); same kernel, same gating, bitwise equal.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_for_overwrite(self.rows, other.rows);
        let cols = other.rows;
        let macs = self.rows * self.cols * cols;
        if parallel::threads() > 1 && macs >= PAR_MIN_MACS && self.rows > 1 {
            parallel::par_row_chunks_mut(&mut out.data, cols, |first_row, chunk| {
                for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                    matmul_nt_row(self.row(first_row + r), other, out_row);
                }
            });
        } else {
            for i in 0..self.rows {
                let out_row = &mut out.data[i * cols..(i + 1) * cols];
                matmul_nt_row(self.row(i), other, out_row);
            }
        }
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// Keeps the `a == 0.0` skip: this kernel's main caller is the
    /// embedding/MLM-head backward pass, where `self` is a one-hot-ish
    /// gather matrix and skipping zero scalars elides whole row updates.
    /// Parallel path: each thread owns a contiguous block of *output*
    /// rows and scans `k` ascending within it, matching the sequential
    /// per-row accumulation order exactly (bitwise identical).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let cols = other.cols;
        let macs = self.cols * cols * self.rows;
        if parallel::threads() > 1 && macs >= PAR_MIN_MACS && self.cols > 1 {
            parallel::par_row_chunks_mut(&mut out.data, cols, |first_row, chunk| {
                for k in 0..self.rows {
                    let a_row = self.row(k);
                    let b_row = other.row(k);
                    for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                        let a = a_row[first_row + r];
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += a * bv;
                        }
                    }
                }
            });
        } else {
            for k in 0..self.rows {
                let a_row = self.row(k);
                let b_row = other.row(k);
                for (i, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[i * cols..(i + 1) * cols];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
        out
    }

    /// Explicit transpose, tiled in [`TRANSPOSE_BLOCK`]-square blocks so
    /// both the strided reads and the contiguous writes stay within one
    /// cache-resident tile at a time.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TRANSPOSE_BLOCK) {
            let r_end = (rb + TRANSPOSE_BLOCK).min(self.rows);
            for cb in (0..self.cols).step_by(TRANSPOSE_BLOCK) {
                let c_end = (cb + TRANSPOSE_BLOCK).min(self.cols);
                for r in rb..r_end {
                    for c in cb..c_end {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Returns a new matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place — the allocation-free counterpart
    /// of [`Matrix::map`] for hot paths that no longer need the input.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise `self *= other` — the allocation-free counterpart of
    /// [`Matrix::hadamard`].
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Adds row-vector `bias` (1×cols) to every row.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(&bias.data) {
                *a += b;
            }
        }
    }

    /// Sums rows into a 1×cols vector (gradient of a row broadcast).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &a) in out.data.iter_mut().zip(self.row(r)) {
                *o += a;
            }
        }
        out
    }

    /// In-place row-wise softmax.
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            softmax_in_place(self.row_mut(r));
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Extracts rows `[start, start+len)` as a new matrix.
    pub fn slice_rows(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows);
        Matrix {
            rows: len,
            cols: self.cols,
            data: self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        }
    }

    /// Stacks matrices with equal column counts vertically.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates matrices with equal row counts horizontally.
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack: row mismatch");
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }
}

/// Numerically stable softmax over a slice, in place. The max and the
/// exponential sum run in the canonical lane order of [`crate::lanes`];
/// the exp pass is the elementwise lane kernel
/// [`crate::activations::exp_shifted_in_place`] (branch-free
/// [`crate::activations::exp_approx`], so it vectorizes), and the
/// denominator is a fixed-order lane reduction over the written values.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = crate::lanes::max(xs);
    crate::activations::exp_shifted_in_place(xs, max);
    let sum = crate::lanes::sum(xs);
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the initial state of a scratch buffer,
    /// which grows on first [`Matrix::reset`].
    fn default() -> Self {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_known_values() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., -2., 3., 0.5, 5., -6.]);
        let b = m(4, 3, &[1., 0., 2., -1., 3., 1., 2., 2., 2., 0., 1., 0.]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(3, 2, &[1., -2., 3., 0.5, 5., -6.]);
        let b = m(3, 4, &[1., 0., 2., -1., 3., 1., 2., 2., 2., 0., 1., 0.]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut a = m(2, 3, &[1., 2., 3., -1., 0., 1.]);
        a.softmax_rows();
        for r in 0..2 {
            let s: f32 = a.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(a.row(r).windows(2).all(|w| w[0] < w[1]), "monotone inputs");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = m(1, 3, &[1000., 1001., 1002.]);
        a.softmax_rows();
        let mut b = m(1, 3, &[0., 1., 2.]);
        b.softmax_rows();
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint_shapes() {
        let mut a = Matrix::zeros(3, 2);
        let bias = m(1, 2, &[1., -1.]);
        a.add_row_broadcast(&bias);
        assert_eq!(a.data(), &[1., -1., 1., -1., 1., -1.]);
        assert_eq!(a.sum_rows().data(), &[3., -3.]);
    }

    #[test]
    fn stack_operations() {
        let a = m(1, 2, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.data(), &[1., 2., 3., 4., 5., 6.]);

        let c = m(2, 1, &[9., 10.]);
        let h = Matrix::hstack(&[&b, &c]);
        assert_eq!(h.cols(), 3);
        assert_eq!(h.data(), &[3., 4., 9., 5., 6., 10.]);
    }

    #[test]
    fn slice_rows_extracts_block() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let s = a.slice_rows(1, 2);
        assert_eq!(s.data(), &[3., 4., 5., 6.]);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[2., 0.5, -1.]);
        assert_eq!(a.hadamard(&b).data(), &[2., 1., -3.]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.data(), &[2., 4., 6.]);
    }

    #[test]
    fn norm_known_value() {
        let a = m(1, 2, &[3., 4.]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let g = m(1, 2, &[1., 2.]);
        a.add_scaled(&g, 0.5);
        a.add_scaled(&g, 0.5);
        assert_eq!(a.data(), &[1., 2.]);
    }

    #[test]
    fn map_in_place_matches_map() {
        let a = m(2, 3, &[1., -2., 3., 0., 5., -6.]);
        let mut b = a.clone();
        b.map_in_place(|x| x * x + 1.0);
        assert_eq!(b, a.map(|x| x * x + 1.0));
    }

    #[test]
    fn hadamard_assign_matches_hadamard() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[0.5, -1., 2., 0.]);
        let mut c = a.clone();
        c.hadamard_assign(&b);
        assert_eq!(c, a.hadamard(&b));
    }

    /// Pseudo-random matrix with zeros sprinkled in, so the `matmul_tn`
    /// zero-skip branch is exercised.
    fn pseudo_random(rows: usize, cols: usize, seed: u32) -> Matrix {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state.is_multiple_of(7) {
                0.0
            } else {
                (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            }
        })
    }

    /// Above [`PAR_MIN_MACS`], all three kernels must produce bitwise
    /// identical output at 1 and many threads (each output row is owned
    /// by one thread with sequential accumulation order).
    #[test]
    fn parallel_kernels_bitwise_match_sequential() {
        let _guard = crate::parallel::test_lock();
        // 128³ = 2 MiMACs: comfortably above the parallel threshold.
        let a = pseudo_random(128, 128, 1);
        let b = pseudo_random(128, 128, 2);

        crate::parallel::set_threads(1);
        let mm_seq = a.matmul(&b);
        let nt_seq = a.matmul_nt(&b);
        let tn_seq = a.matmul_tn(&b);

        crate::parallel::set_threads(5);
        let mm_par = a.matmul(&b);
        let nt_par = a.matmul_nt(&b);
        let tn_par = a.matmul_tn(&b);
        crate::parallel::set_threads(1);

        // Matrix: PartialEq compares the f32 buffers exactly; all inputs
        // are finite and no NaNs are produced, so == is bitwise here.
        assert_eq!(mm_seq, mm_par, "matmul");
        assert_eq!(nt_seq, nt_par, "matmul_nt");
        assert_eq!(tn_seq, tn_par, "matmul_tn");
    }

    /// The naive index-by-index transpose the blocked kernel replaced;
    /// kept as the property-test oracle.
    fn naive_transpose(a: &Matrix) -> Matrix {
        Matrix::from_fn(a.cols(), a.rows(), |r, c| a[(c, r)])
    }

    proptest::proptest! {
        #[test]
        fn blocked_transpose_matches_naive(
            rows in 1usize..70,
            cols in 1usize..70,
            seed in 0u32..1000,
        ) {
            let a = pseudo_random(rows, cols, seed);
            let t = a.transpose();
            proptest::prop_assert_eq!(&t, &naive_transpose(&a));
            // Involution: transposing twice restores the original.
            proptest::prop_assert_eq!(&t.transpose(), &a);
        }
    }
}
