use crate::Matrix;
use rand::rngs::StdRng;
use rand::RngExt;

/// A trainable parameter: value, accumulated gradient, and Adam moments.
///
/// Layers own their `Param`s and expose them to the optimiser through
/// [`crate::Module::visit_params`]; gradients are accumulated by each
/// layer's `backward` and cleared by [`crate::Adam::step`].
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Matrix,
    pub grad: Matrix,
    /// Adam first moment.
    pub(crate) m: Matrix,
    /// Adam second moment.
    pub(crate) v: Matrix,
}

impl Param {
    /// A parameter initialised to zeros (used for biases and LayerNorm β).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Param {
            value: Matrix::zeros(rows, cols),
            grad: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// A parameter filled with a constant (used for LayerNorm γ = 1).
    pub fn constant(rows: usize, cols: usize, c: f32) -> Self {
        let mut p = Param::zeros(rows, cols);
        p.value = Matrix::from_fn(rows, cols, |_, _| c);
        p
    }

    /// Xavier/Glorot uniform initialisation for a `rows × cols` weight.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let mut p = Param::zeros(rows, cols);
        p.value = Matrix::from_fn(rows, cols, |_, _| rng.random_range(-bound..bound));
        p
    }

    /// Small-normal initialisation (σ = 0.02, BERT-style) for embeddings.
    pub fn normal_init(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Self {
        let mut p = Param::zeros(rows, cols);
        // Box-Muller; rand's StandardNormal lives in rand_distr which we
        // deliberately avoid.
        p.value = Matrix::from_fn(rows, cols, |_, _| {
            let u1: f32 = rng.random_range(f32::EPSILON..1.0);
            let u2: f32 = rng.random_range(0.0..1.0);
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        });
        p
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.data().len()
    }

    /// Whether the parameter is empty (degenerate shapes only).
    pub fn is_empty(&self) -> bool {
        self.value.data().is_empty()
    }
}

/// Anything holding trainable parameters. Gives optimisers a uniform way
/// to walk a model without the layers knowing about optimisation.
pub trait Module {
    /// Calls `f` on every parameter, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Clears all gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Param::xavier(16, 16, &mut rng);
        let bound = (6.0 / 32.0f32).sqrt();
        assert!(p.value.data().iter().all(|&x| x.abs() <= bound));
        // Not all zero.
        assert!(p.value.norm() > 0.0);
    }

    #[test]
    fn normal_init_has_roughly_right_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Param::normal_init(64, 64, 0.02, &mut rng);
        let n = p.value.data().len() as f32;
        let mean: f32 = p.value.data().iter().sum::<f32>() / n;
        let var: f32 = p
            .value
            .data()
            .iter()
            .map(|&x| (x - mean).powi(2))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(2, 2);
        p.grad = Matrix::from_vec(2, 2, vec![1.0; 4]);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn constant_fill() {
        let p = Param::constant(1, 3, 1.0);
        assert_eq!(p.value.data(), &[1.0, 1.0, 1.0]);
    }
}
