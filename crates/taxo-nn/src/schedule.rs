//! Training utilities: learning-rate schedules and gradient clipping.

use crate::{Module, Param};

/// A learning-rate schedule mapping a step index to a multiplier of the
/// base learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Linear warmup over `warmup` steps, then constant.
    Warmup { warmup: u64 },
    /// Linear warmup then cosine decay to `floor` at `total` steps
    /// (the usual Transformer pretraining shape).
    WarmupCosine { warmup: u64, total: u64, floor: f32 },
}

impl LrSchedule {
    /// The multiplier at `step` (0-based).
    pub fn multiplier(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || step >= warmup {
                    1.0
                } else {
                    (step + 1) as f32 / warmup as f32
                }
            }
            LrSchedule::WarmupCosine {
                warmup,
                total,
                floor,
            } => {
                if warmup > 0 && step < warmup {
                    return (step + 1) as f32 / warmup as f32;
                }
                if total <= warmup || step >= total {
                    return floor;
                }
                let progress = (step - warmup) as f32 / (total - warmup) as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                floor + (1.0 - floor) * cos
            }
        }
    }

    /// The absolute learning rate at `step` for a base rate.
    pub fn lr_at(&self, base_lr: f32, step: u64) -> f32 {
        base_lr * self.multiplier(step)
    }
}

/// Rescales all gradients of `module` so that their *global* L2 norm does
/// not exceed `max_norm`. Returns the pre-clipping norm. Standard
/// stabiliser for Transformer fine-tuning.
pub fn clip_grad_norm(module: &mut dyn Module, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f64;
    module.visit_params(&mut |p: &mut Param| {
        sq += p
            .grad
            .data()
            .iter()
            .map(|&g| (g as f64) * (g as f64))
            .sum::<f64>();
    });
    let norm = (sq as f32).sqrt();
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        module.visit_params(&mut |p: &mut Param| p.grad.scale(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_schedule() {
        let s = LrSchedule::Constant;
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.lr_at(3e-4, 1_000_000), 3e-4);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 10 };
        assert!((s.multiplier(0) - 0.1).abs() < 1e-6);
        assert!((s.multiplier(4) - 0.5).abs() < 1e-6);
        assert_eq!(s.multiplier(10), 1.0);
        assert_eq!(s.multiplier(999), 1.0);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine {
            warmup: 10,
            total: 110,
            floor: 0.1,
        };
        // Ramp up…
        assert!(s.multiplier(0) < s.multiplier(5));
        // …peak right after warmup…
        assert!((s.multiplier(10) - 1.0).abs() < 0.02);
        // …monotone decay…
        assert!(s.multiplier(40) > s.multiplier(80));
        // …to the floor.
        assert!((s.multiplier(110) - 0.1).abs() < 1e-6);
        assert_eq!(s.multiplier(10_000), 0.1);
        // Midpoint of the cosine is halfway between floor and 1.
        let mid = s.multiplier(60);
        assert!((mid - 0.55).abs() < 0.02, "mid {mid}");
    }

    #[test]
    fn clipping_caps_global_norm() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(4, 4, &mut rng);
        lin.w.grad = Matrix::from_fn(4, 4, |_, _| 10.0);
        lin.b.grad = Matrix::from_fn(1, 4, |_, _| 10.0);
        let before = clip_grad_norm(&mut lin, 1.0);
        assert!(before > 1.0);
        let after = clip_grad_norm(&mut lin, 1.0);
        assert!((after - 1.0).abs() < 1e-4, "clipped norm {after}");
    }

    #[test]
    fn small_gradients_untouched() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.w.grad = Matrix::from_fn(2, 2, |_, _| 0.01);
        let snapshot = lin.w.grad.clone();
        clip_grad_norm(&mut lin, 5.0);
        assert_eq!(lin.w.grad, snapshot);
    }
}
