use crate::{Matrix, Module, Param};
use rand::rngs::StdRng;

/// A lookup table mapping ids to `dim`-dimensional rows.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: Param,
}

/// Saved ids for one [`Embedding::forward`] call.
#[derive(Debug, Clone)]
pub struct EmbeddingCtx {
    ids: Vec<u32>,
}

impl Embedding {
    /// A BERT-style σ=0.02 normal-initialised table.
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding {
            table: Param::normal_init(vocab, dim, 0.02, rng),
        }
    }

    /// Gathers rows for `ids` into an `ids.len() × dim` matrix.
    pub fn forward(&self, ids: &[u32]) -> (Matrix, EmbeddingCtx) {
        let dim = self.table.value.cols();
        let mut out = Matrix::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r)
                .copy_from_slice(self.table.value.row(id as usize));
        }
        (out, EmbeddingCtx { ids: ids.to_vec() })
    }

    /// Scatters `dout` rows back into the table gradient.
    pub fn backward(&mut self, ctx: &EmbeddingCtx, dout: &Matrix) {
        for (r, &id) in ctx.ids.iter().enumerate() {
            let grad_row = self.table.grad.row_mut(id as usize);
            for (g, &d) in grad_row.iter_mut().zip(dout.row(r)) {
                *g += d;
            }
        }
    }

    /// Number of embeddings.
    pub fn vocab_size(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }
}

impl Module for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gather_returns_table_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(5, 3, &mut rng);
        let (out, _) = emb.forward(&[2, 2, 4]);
        assert_eq!(out.row(0), emb.table.value.row(2));
        assert_eq!(out.row(1), emb.table.value.row(2));
        assert_eq!(out.row(2), emb.table.value.row(4));
    }

    #[test]
    fn backward_scatters_and_accumulates_repeats() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new(4, 2, &mut rng);
        let (_, ctx) = emb.forward(&[1, 1, 3]);
        let dout = Matrix::from_vec(3, 2, vec![1., 2., 10., 20., 5., 6.]);
        emb.backward(&ctx, &dout);
        assert_eq!(emb.table.grad.row(1), &[11., 22.]);
        assert_eq!(emb.table.grad.row(3), &[5., 6.]);
        assert_eq!(emb.table.grad.row(0), &[0., 0.]);
    }

    #[test]
    fn shape_accessors() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(10, 7, &mut rng);
        assert_eq!(emb.vocab_size(), 10);
        assert_eq!(emb.dim(), 7);
    }
}
