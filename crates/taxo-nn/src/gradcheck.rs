//! Finite-difference gradient checking, used by every layer's test suite
//! (here and in `taxo-graph`). Exposed publicly because correct manual
//! backpropagation is the riskiest part of a from-scratch NN substrate.

use crate::{Matrix, Module, Param};

/// A deterministic pseudo-random weighting matrix defining the scalar test
/// loss `L(y) = Σ w_ij · y_ij`; using varied weights ensures the check
/// exercises off-diagonal gradient terms.
pub fn loss_weights(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17 + 7) % 13) as f32) / 13.0 - 0.5
    })
}

fn weighted_loss(y: &Matrix, w: &Matrix) -> f64 {
    y.data()
        .iter()
        .zip(w.data())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum()
}

fn relative_error(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs()).max(1e-2);
    (a - b).abs() / denom
}

/// Verifies that a layer's analytic gradients (both parameter gradients and
/// the input gradient) match central finite differences.
///
/// * `forward(&layer, &input) -> (output, ctx)`
/// * `backward(&mut layer, &ctx, &dout) -> dinput`, accumulating parameter
///   gradients into the layer.
///
/// # Panics
/// Panics (failing the test) when any sampled coordinate's relative error
/// exceeds `tol`.
pub fn check_gradients<L, C>(
    mut layer: L,
    input: Matrix,
    forward: impl Fn(&L, &Matrix) -> (Matrix, C),
    backward: impl Fn(&mut L, &C, &Matrix) -> Matrix,
    tol: f64,
) where
    L: Module + Clone,
{
    let (y, ctx) = forward(&layer, &input);
    let w = loss_weights(y.rows(), y.cols());
    layer.zero_grad();
    let dinput = backward(&mut layer, &ctx, &w);

    let h = 1e-2f32;

    // 1. Input gradient.
    for i in sample_indices(input.data().len()) {
        let mut xp = input.clone();
        xp.data_mut()[i] += h;
        let lp = weighted_loss(&forward(&layer, &xp).0, &w);
        let mut xm = input.clone();
        xm.data_mut()[i] -= h;
        let lm = weighted_loss(&forward(&layer, &xm).0, &w);
        let numeric = (lp - lm) / (2.0 * h as f64);
        let analytic = dinput.data()[i] as f64;
        assert!(
            relative_error(analytic, numeric) < tol,
            "input grad [{i}]: analytic {analytic} vs numeric {numeric}"
        );
    }

    // 2. Parameter gradients. Collect analytic grads first.
    let mut analytic_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p: &mut Param| analytic_grads.push(p.grad.data().to_vec()));

    for (pi, grads) in analytic_grads.iter().enumerate() {
        for i in sample_indices(grads.len()) {
            let mut lp = layer.clone();
            perturb(&mut lp, pi, i, h);
            let yp = weighted_loss(&forward(&lp, &input).0, &w);
            let mut lm = layer.clone();
            perturb(&mut lm, pi, i, -h);
            let ym = weighted_loss(&forward(&lm, &input).0, &w);
            let numeric = (yp - ym) / (2.0 * h as f64);
            let analytic = grads[i] as f64;
            assert!(
                relative_error(analytic, numeric) < tol,
                "param {pi} grad [{i}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }
}

fn perturb<L: Module>(layer: &mut L, param_index: usize, coord: usize, delta: f32) {
    let mut seen = 0usize;
    layer.visit_params(&mut |p: &mut Param| {
        if seen == param_index {
            p.value.data_mut()[coord] += delta;
        }
        seen += 1;
    });
}

/// Deterministically samples up to 40 coordinates to keep checks fast on
/// large parameter tensors while still covering every small tensor fully.
fn sample_indices(len: usize) -> Vec<usize> {
    if len <= 40 {
        (0..len).collect()
    } else {
        let stride = len / 40;
        (0..40)
            .map(|k| (k * stride + k * k % stride.max(1)) % len)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn loss_weights_vary() {
        let w = loss_weights(3, 5);
        let distinct: std::collections::HashSet<_> =
            w.data().iter().map(|&x| (x * 1000.0) as i32).collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    #[should_panic(expected = "grad")]
    fn detects_a_wrong_backward() {
        // A linear layer whose backward lies about the input gradient.
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.1 + 0.1);
        check_gradients(
            lin,
            x,
            |l, input| l.forward(input),
            |l, ctx, dy| {
                let mut dx = l.backward(ctx, dy);
                dx.scale(3.0); // wrong on purpose
                dx
            },
            1e-2,
        );
    }
}
