use crate::activations::{sigmoid, sigmoid_grad_from_output};
use crate::{losses, Linear, LinearCtx, Matrix, Module, Param};
use rand::rngs::StdRng;

/// The edge classifier of Eq. 15:
/// `f(e) = softmax(W2 · σ(W1 · e + B1) + B2)` with σ the logistic sigmoid
/// and two output classes (class 1 = "is a hyponymy relation").
#[derive(Debug, Clone)]
pub struct Mlp {
    pub lin1: Linear,
    pub lin2: Linear,
}

/// Saved activations for one [`Mlp::forward`] call.
#[derive(Debug, Clone)]
pub struct MlpCtx {
    ctx1: LinearCtx,
    ctx2: LinearCtx,
    hidden_act: Matrix,
}

impl Mlp {
    /// `input_dim → hidden → 2` classifier.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Mlp {
            lin1: Linear::new(input_dim, hidden, rng),
            lin2: Linear::new(hidden, 2, rng),
        }
    }

    /// Produces class *logits* (`n × 2`); apply softmax for probabilities.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MlpCtx) {
        let (pre, ctx1) = self.lin1.forward(x);
        // Fused in-place activation: `pre` is not needed past this point,
        // so reuse its buffer instead of allocating a mapped copy.
        let mut hidden_act = pre;
        hidden_act.map_in_place(sigmoid);
        let (logits, ctx2) = self.lin2.forward(&hidden_act);
        (
            logits,
            MlpCtx {
                ctx1,
                ctx2,
                hidden_act,
            },
        )
    }

    /// Forward-only variant of [`Mlp::forward`] with caller-owned scratch:
    /// one GEMM per layer over the whole batch, sigmoid fused in place —
    /// the exact operations of the allocating path, bitwise identical
    /// per row.
    pub fn forward_into(&self, x: &Matrix, hidden: &mut Matrix, logits: &mut Matrix) {
        self.lin1.forward_into(x, hidden);
        hidden.map_in_place(sigmoid);
        self.lin2.forward_into(hidden, logits);
    }

    /// Batched [`Mlp::predict_positive`]: positive-class probability for
    /// every row of `x`, appended to `out`. Each row's softmax is
    /// independent, so row `r` equals `predict_positive` of that row alone
    /// bit for bit. `logits` is left holding the per-row probabilities.
    pub fn predict_positive_batch_into(
        &self,
        x: &Matrix,
        hidden: &mut Matrix,
        logits: &mut Matrix,
        out: &mut Vec<f32>,
    ) {
        self.forward_into(x, hidden, logits);
        logits.softmax_rows();
        for r in 0..logits.rows() {
            out.push(logits[(r, 1)]);
        }
    }

    /// Backpropagates `dlogits`, accumulating gradients; returns dx.
    pub fn backward(&mut self, ctx: &MlpCtx, dlogits: &Matrix) -> Matrix {
        // Fused: scale the owned d_hidden buffer by σ′ in place rather
        // than building a second matrix element-by-element.
        let mut d_pre = self.lin2.backward(&ctx.ctx2, dlogits);
        for (d, &h) in d_pre.data_mut().iter_mut().zip(ctx.hidden_act.data()) {
            *d *= sigmoid_grad_from_output(h);
        }
        self.lin1.backward(&ctx.ctx1, &d_pre)
    }

    /// Probability of the positive class for a single edge representation.
    pub fn predict_positive(&self, x: &Matrix) -> f32 {
        let (mut logits, _) = self.forward(x);
        logits.softmax_rows();
        logits[(0, 1)]
    }

    /// One supervised step on a batch: `x` is `n × input_dim`, `labels`
    /// are 0/1. Accumulates gradients and returns `(loss, dx)`.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize]) -> (f32, Matrix) {
        let (logits, ctx) = self.forward(x);
        let (loss, dlogits) = losses::softmax_xent(&logits, labels);
        let dx = self.backward(&ctx, &dlogits);
        (loss, dx)
    }
}

impl Module for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::Adam;
    use rand::RngExt;
    use rand::SeedableRng;

    #[test]
    fn predict_positive_is_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(4, 8, &mut rng);
        let x = Matrix::from_vec(1, 4, vec![0.5, -0.3, 0.2, 0.9]);
        let p = mlp.predict_positive(&x);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(3, 5, &mut rng);
        let x = Matrix::from_fn(2, 3, |r, c| 0.4 * (r as f32) - 0.2 * (c as f32) + 0.1);
        check_gradients(
            mlp,
            x,
            |layer, input| layer.forward(input),
            |layer, ctx, dy| layer.backward(ctx, dy),
            3e-2,
        );
    }

    /// The classifier must learn a linearly separable rule.
    #[test]
    fn learns_linear_rule() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut mlp = Mlp::new(2, 8, &mut rng);
        let mut adam = Adam::new(1e-2);
        for _ in 0..400 {
            let mut xs = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..16 {
                let a: f32 = rng.random_range(-1.0..1.0);
                let b: f32 = rng.random_range(-1.0..1.0);
                xs.extend_from_slice(&[a, b]);
                labels.push(usize::from(a + b > 0.0));
            }
            let x = Matrix::from_vec(16, 2, xs);
            mlp.train_batch(&x, &labels);
            adam.step(&mut mlp);
        }
        let mut correct = 0;
        for _ in 0..100 {
            let a: f32 = rng.random_range(-1.0..1.0);
            let b: f32 = rng.random_range(-1.0..1.0);
            let p = mlp.predict_positive(&Matrix::from_vec(1, 2, vec![a, b]));
            if (p > 0.5) == (a + b > 0.0) {
                correct += 1;
            }
        }
        assert!(correct > 90, "accuracy {correct}/100");
    }
}
