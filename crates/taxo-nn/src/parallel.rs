//! Workspace-wide parallel execution layer.
//!
//! Every parallel code path in the workspace — threaded matmul kernels,
//! data-parallel training batches, candidate-pair scoring — is built on
//! the two primitives here ([`par_row_chunks_mut`] and [`par_map`]) and
//! governed by one thread-count knob:
//!
//! * `TAXO_THREADS=<n>` environment variable (checked once, lazily);
//!   `TAXO_THREADS=1` forces fully sequential execution.
//! * [`set_threads`] for programmatic override (used by the determinism
//!   regression tests to pin 1 vs N threads inside one process).
//! * Otherwise `std::thread::available_parallelism()`.
//!
//! # Determinism contract
//!
//! Parallel sections must produce results that are **independent of the
//! thread count**. The primitives support this by construction:
//!
//! * [`par_row_chunks_mut`] gives each thread an exclusive contiguous
//!   block of output rows, so each output row is written by exactly one
//!   thread with the same per-row accumulation order as the sequential
//!   kernel — results are bitwise identical to `TAXO_THREADS=1`.
//! * [`par_map`] evaluates a pure function at every index and returns
//!   results in index order; callers reduce the returned `Vec` in that
//!   fixed order, so floating-point accumulation order never depends on
//!   scheduling.
//!
//! Threads are spawned per call via [`std::thread::scope`] rather than a
//! persistent pool; the matrix kernels amortise the spawn cost with a
//! FLOP-count threshold (see `matrix.rs`), and the training/eval layers
//! parallelise at batch granularity where each unit of work is far larger
//! than a thread spawn.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolved thread count; 0 means "not yet initialised".
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn resolve_default() -> usize {
    match std::env::var("TAXO_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The thread count all parallel sections use. Reads `TAXO_THREADS` on
/// first call; later calls return the cached (or [`set_threads`]) value.
pub fn threads() -> usize {
    let cur = THREADS.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let n = resolve_default();
    // A concurrent first call may race; both compute the same default, so
    // a plain store is fine.
    THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the thread count for the rest of the process (clamped to at
/// least 1). Intended for tests; library code should rely on
/// `TAXO_THREADS`.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Snapshot of the parallelism configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    pub threads: usize,
}

impl Parallelism {
    /// The configuration parallel sections will run under right now.
    pub fn current() -> Self {
        Parallelism { threads: threads() }
    }

    /// True when every parallel section degenerates to a plain loop.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }
}

/// Splits `data` into per-thread contiguous blocks of whole rows
/// (`row_len` elements each) and runs `f(first_row, block)` on each block
/// concurrently. The first block runs on the calling thread.
///
/// Each row lands in exactly one block, so a kernel that fills rows
/// independently produces bitwise-identical output at any thread count.
///
/// # Panics
/// Panics if `row_len` does not divide `data.len()`.
pub fn par_row_chunks_mut<F>(data: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "par_row_chunks_mut: row_len {row_len} must divide buffer length {}",
        data.len()
    );
    let rows = data.len() / row_len;
    let t = threads().min(rows.max(1));
    if t <= 1 {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(t);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut row0 = 0usize;
        let mut first: Option<(usize, &mut [f32])> = None;
        while !rest.is_empty() {
            let take = chunk_rows.min(rest.len() / row_len);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take * row_len);
            if first.is_none() {
                first = Some((row0, head));
            } else {
                let start = row0;
                scope.spawn(move || f(start, head));
            }
            row0 += take;
            rest = tail;
        }
        if let Some((start, head)) = first {
            f(start, head);
        }
    });
}

/// Evaluates `f(0), f(1), …, f(n-1)` across the configured threads and
/// returns the results **in index order**, like
/// `(0..n).map(f).collect()` but parallel.
///
/// `f` must be pure with respect to index order (no shared mutation);
/// callers that reduce the returned `Vec` sequentially get the same
/// floating-point accumulation order at any thread count.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    taxo_obs::counter!("nn.parallel.par_map_calls").inc();
    taxo_obs::counter!("nn.parallel.par_map_items").add(n as u64);
    let t = threads().min(n.max(1));
    if t <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(t);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest: &mut [Option<T>] = &mut out;
        let mut start = 0usize;
        let mut first: Option<(usize, &mut [Option<T>])> = None;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            if first.is_none() {
                first = Some((start, head));
            } else {
                let s = start;
                scope.spawn(move || {
                    for (i, slot) in head.iter_mut().enumerate() {
                        *slot = Some(f(s + i));
                    }
                });
            }
            start += take;
            rest = tail;
        }
        if let Some((s, head)) = first {
            for (i, slot) in head.iter_mut().enumerate() {
                *slot = Some(f(s + i));
            }
        }
    });
    out.into_iter()
        .map(|x| x.expect("par_map: every index filled"))
        .collect()
}

/// Serialises tests (across this crate's test binary) that mutate the
/// global thread count via [`set_threads`], so concurrently running tests
/// never observe each other's overrides.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        let _guard = test_lock();
        set_threads(4);
        let got = par_map(37, |i| i * i);
        set_threads(1);
        assert_eq!(got, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_small_and_empty_inputs() {
        let _guard = test_lock();
        set_threads(8);
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 1), vec![1]);
        set_threads(1);
    }

    #[test]
    fn par_row_chunks_mut_covers_every_row_once() {
        let _guard = test_lock();
        set_threads(4);
        let rows = 13;
        let cols = 3;
        let mut buf = vec![0.0f32; rows * cols];
        par_row_chunks_mut(&mut buf, cols, |first_row, chunk| {
            for (r, row) in chunk.chunks_mut(cols).enumerate() {
                for x in row.iter_mut() {
                    *x += (first_row + r) as f32;
                }
            }
        });
        set_threads(1);
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(buf[r * cols + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn parallelism_snapshot_reflects_override() {
        let _guard = test_lock();
        set_threads(3);
        let p = Parallelism::current();
        assert_eq!(p.threads, 3);
        assert!(!p.is_sequential());
        set_threads(1);
        assert!(Parallelism::current().is_sequential());
    }
}
