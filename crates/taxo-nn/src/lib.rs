//! From-scratch neural-network substrate (no DL framework, pure `f32`
//! Rust): dense matrices, manually backpropagated layers, a BERT-style
//! Transformer encoder with an MLM head, optimisers, and the losses the
//! paper uses (cross-entropy, BCE, InfoNCE).
//!
//! The paper fine-tunes BERT-Chinese; `repro = 2/5` flags exactly this
//! dependency ("immature DL frameworks"), so this crate *is* the
//! substitution: the same architecture class at laptop scale. Every layer
//! exposes an explicit `forward(…) -> (output, ctx)` / `backward(ctx, d)`
//! pair, and every backward pass is verified against central finite
//! differences in its test module via [`gradcheck::check_gradients`].
//!
//! # Example: train the edge-classifier MLP
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use taxo_nn::{Adam, Matrix, Mlp};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut mlp = Mlp::new(4, 8, &mut rng);
//! let mut adam = Adam::new(1e-2);
//! let x = Matrix::from_vec(2, 4, vec![1., 0., 0., 0., 0., 0., 0., 1.]);
//! for _ in 0..50 {
//!     mlp.train_batch(&x, &[1, 0]);
//!     adam.step(&mut mlp);
//! }
//! assert!(mlp.predict_positive(&x.slice_rows(0, 1)) > 0.5);
//! ```

pub mod activations;
mod attention;
mod block;
mod embedding;
mod encoder;
mod ffn;
pub mod gradcheck;
pub mod lanes;
mod layernorm;
mod linear;
pub mod losses;
mod matrix;
mod mlp;
mod optim;
pub mod parallel;
mod param;
pub mod quant;
mod schedule;
pub mod scratch;
mod serialize;

pub use attention::{AttentionCtx, MultiHeadSelfAttention};
pub use block::{BlockCtx, TransformerBlock};
pub use embedding::{Embedding, EmbeddingCtx};
pub use encoder::{EncoderConfig, EncoderCtx, MlmGrads, TransformerEncoder};
pub use ffn::{FeedForward, FeedForwardCtx};
pub use layernorm::{LayerNorm, LayerNormCtx};
pub use linear::{Linear, LinearCtx};
pub use matrix::{softmax_in_place, Matrix};
pub use mlp::{Mlp, MlpCtx};
pub use optim::{Adam, Sgd};
pub use parallel::Parallelism;
pub use param::{Module, Param};
pub use quant::{QuantEncoder, QuantLinear, QuantMatrix, QuantMlp};
pub use schedule::{clip_grad_norm, LrSchedule};
pub use scratch::{BlockScratch, Scratch};
pub use serialize::{load_params, save_params, LoadError};
