use crate::{Matrix, Module, Param};
use rand::rngs::StdRng;

/// A fully connected layer `y = x·Wᵀ + b` with `W: out × in`.
///
/// Layers are *stateless across calls*: `forward` returns a [`LinearCtx`]
/// capturing what `backward` needs, so one layer can appear several times
/// in a computation graph (e.g. the four projections of attention applied
/// to every sequence in a batch) without aliasing issues.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: Param,
    pub b: Param,
}

/// Saved activations for one [`Linear::forward`] call.
#[derive(Debug, Clone)]
pub struct LinearCtx {
    input: Matrix,
}

impl Linear {
    /// Xavier-initialised layer mapping `input_dim` → `output_dim`.
    pub fn new(input_dim: usize, output_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            w: Param::xavier(output_dim, input_dim, rng),
            b: Param::zeros(1, output_dim),
        }
    }

    /// `x: n × in` → `n × out`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LinearCtx) {
        let mut y = x.matmul_nt(&self.w.value);
        y.add_row_broadcast(&self.b.value);
        (y, LinearCtx { input: x.clone() })
    }

    /// Forward-only variant of [`Linear::forward`]: writes into a
    /// caller-owned buffer, saves no context, allocates nothing once `out`
    /// is warm. Same kernels, bitwise-identical output.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_nt_into(&self.w.value, out);
        out.add_row_broadcast(&self.b.value);
    }

    /// Accumulates `dW`, `db` and returns `dx`.
    pub fn backward(&mut self, ctx: &LinearCtx, dy: &Matrix) -> Matrix {
        // dW = dyᵀ · x  (out × in), db = Σ rows of dy, dx = dy · W.
        self.w.grad.add_assign(&dy.matmul_tn(&ctx.input));
        self.b.grad.add_assign(&dy.sum_rows());
        dy.matmul(&self.w.value)
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.w.value.rows()
    }
}

impl Module for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        lin.b.value = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let x = Matrix::zeros(4, 3);
        let (y, _) = lin.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        // Zero input -> bias only.
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let lin = Linear::new(4, 3, &mut rng);
        let x = Matrix::from_fn(2, 4, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32) + 0.1);
        check_gradients(
            lin,
            x,
            |layer, input| layer.forward(input),
            |layer, ctx, dy| layer.backward(ctx, dy),
            2e-2,
        );
    }

    #[test]
    fn backward_accumulates_over_calls() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let (_, ctx) = lin.forward(&x);
        let dy = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        lin.backward(&ctx, &dy);
        let g1 = lin.w.grad.clone();
        lin.backward(&ctx, &dy);
        let mut doubled = g1.clone();
        doubled.scale(2.0);
        assert_eq!(lin.w.grad, doubled);
    }

    #[test]
    fn module_param_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lin = Linear::new(5, 3, &mut rng);
        assert_eq!(lin.param_count(), 5 * 3 + 3);
    }
}
