//! Hierarchical wall-time spans with RAII guards.
//!
//! A span measures one phase: create a guard with [`crate::span!`], and
//! its wall time is merged into the global per-path aggregate when the
//! guard drops. Aggregation is keyed by the dotted path, not by thread,
//! so a span opened inside a `taxo_nn::parallel` worker contributes to
//! the same aggregate as one opened on the main thread.
//!
//! Hierarchy has two forms:
//!
//! * **Absolute** paths carry their hierarchy in the name
//!   (`"pipeline.mlm_pretrain"` is a child of `"pipeline"` by naming
//!   convention) — this is what all workspace instrumentation uses, and
//!   it is deterministic no matter which thread the span runs on.
//! * **Relative** names (leading `.`, e.g. `span!(".score")`) append to
//!   the innermost span currently open *on this thread*, for ad-hoc
//!   drill-down without repeating the parent path.
//!
//! Span wall-times are the one observability output that is *not*
//! thread-count invariant; determinism comparisons must use
//! [`crate::MetricsSnapshot::deterministic`], which drops them.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

#[derive(Debug, Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

fn store() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static STORE: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// Paths of the spans currently open on this thread, outermost first.
    static ACTIVE: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timings of one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Summed wall time across entries, nanoseconds.
    pub total_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Total wall time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// RAII timer for one span entry; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    path: String,
    start: Instant,
}

/// Opens a span. Prefer the [`crate::span!`] macro, which reads as
/// instrumentation at the call site.
pub fn enter(name: &str) -> SpanGuard {
    let path = if let Some(rel) = name.strip_prefix('.') {
        ACTIVE.with(|stack| match stack.borrow().last() {
            Some(parent) => format!("{parent}.{rel}"),
            None => rel.to_owned(),
        })
    } else {
        name.to_owned()
    };
    ACTIVE.with(|stack| stack.borrow_mut().push(path.clone()));
    SpanGuard {
        path,
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards normally drop LIFO; tolerate out-of-order drops by
            // removing the last matching entry.
            if let Some(pos) = stack.iter().rposition(|p| *p == self.path) {
                stack.remove(pos);
            }
        });
        {
            let mut map = store().lock().unwrap_or_else(|e| e.into_inner());
            let stat = map.entry(self.path.clone()).or_default();
            stat.count += 1;
            stat.total_ns = stat.total_ns.saturating_add(ns);
            stat.max_ns = stat.max_ns.max(ns);
        }
        crate::report::log_span_close(&self.path, ns);
    }
}

/// Opens a wall-time span for the enclosing scope:
/// `let _guard = span!("pipeline.mlm_pretrain");`. Binding the guard to
/// `_` drops it immediately and times nothing — always name the binding.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

/// Sorted copy of every span aggregate.
pub fn snapshot_spans() -> Vec<SpanSnapshot> {
    let map = store().lock().unwrap_or_else(|e| e.into_inner());
    map.iter()
        .map(|(path, s)| SpanSnapshot {
            path: path.clone(),
            count: s.count,
            total_ns: s.total_ns,
            max_ns: s.max_ns,
        })
        .collect()
}

/// Clears every span aggregate (open guards still record on drop).
pub fn reset_spans() {
    store().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(path: &str) -> Option<SpanSnapshot> {
        snapshot_spans().into_iter().find(|s| s.path == path)
    }

    #[test]
    fn span_records_count_and_time() {
        {
            let _g = enter("test.span.timed");
        }
        {
            let _g = enter("test.span.timed");
        }
        let s = stat("test.span.timed").expect("recorded");
        assert_eq!(s.count, 2);
        assert!(s.max_ns <= s.total_ns);
    }

    #[test]
    fn relative_spans_nest_under_the_active_path() {
        {
            let _outer = enter("test.span.outer");
            let _inner = enter(".inner");
            let _leaf = enter(".leaf");
        }
        assert!(stat("test.span.outer").is_some());
        assert!(stat("test.span.outer.inner").is_some());
        assert!(stat("test.span.outer.inner.leaf").is_some());
    }

    #[test]
    fn relative_span_without_parent_is_absolute() {
        {
            let _g = enter(".test_span_orphan");
        }
        assert!(stat("test_span_orphan").is_some());
    }

    #[test]
    fn worker_thread_spans_merge_into_the_same_aggregate() {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _g = enter("test.span.worker");
                });
            }
        });
        {
            let _g = enter("test.span.worker");
        }
        assert!(stat("test.span.worker").expect("recorded").count >= 5);
    }
}
