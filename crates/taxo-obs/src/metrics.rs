//! The metric primitives and the process-global registry.
//!
//! All three instrument kinds are plain atomics, so recording from
//! `taxo_nn::parallel` worker threads needs no locking; the registry's
//! mutex is touched only on first lookup of a name (the `counter!` family
//! of macros caches that lookup in a `static`).

use crate::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time signed value (sizes, levels, last-seen quantities).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Default histogram bucket upper bounds (`value <= bound`), roughly
/// ×2/×4 spaced: wide enough for per-query candidate counts at one end
/// and corpus sizes at the other. An implicit overflow bucket catches
/// everything above the last bound.
pub const DEFAULT_BOUNDS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
];

/// A fixed-bucket histogram of `u64` observations. Bucket counts and the
/// integer sum are exact and order-independent, so histograms of
/// deterministic values compare equal across thread counts.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One per bound, plus the overflow bucket at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, AtomicU64::default);
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: i64,
}

/// Snapshot of one histogram. `buckets[i]` counts observations with
/// `value <= bounds[i]`; the final extra entry is the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

/// The registry: name → instrument, one per kind. Names are dotted paths
/// (`<subsystem>.<phase>.<what>`, see DESIGN.md's naming scheme); the
/// same name may exist independently as a counter and a histogram, but
/// by convention each name is used for exactly one kind.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricRegistry {
    /// The counter registered under `name`, creating it at zero on first
    /// use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram registered under `name` with [`DEFAULT_BOUNDS`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, DEFAULT_BOUNDS)
    }

    /// The histogram registered under `name`, using `bounds` if this is
    /// the first registration (an existing histogram keeps its original
    /// bounds — bucket layouts must stay stable within a process).
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Copies every metric, sorted by name (`BTreeMap` order). Span
    /// aggregates are added by [`crate::snapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            map.iter()
                .map(|(name, c)| CounterSnapshot {
                    name: name.clone(),
                    value: c.get(),
                })
                .collect()
        };
        let gauges = {
            let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            map.iter()
                .map(|(name, g)| GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect()
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            map.iter()
                .map(|(name, h)| HistogramSnapshot {
                    name: name.clone(),
                    bounds: h.bounds.clone(),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: h.count(),
                    sum: h.sum(),
                })
                .collect()
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            spans: Vec::new(),
        }
    }

    /// Zeroes every registered value in place (handles stay valid).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
    }
}

/// The process-global registry every instrumented crate records into.
pub fn registry() -> &'static MetricRegistry {
    static GLOBAL: OnceLock<MetricRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricRegistry::default)
}

/// A counter handle with the registry lookup cached in a `static`; the
/// hot path is a single relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// A gauge handle with the registry lookup cached in a `static`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// A histogram handle (default bounds) with the registry lookup cached
/// in a `static`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_handles() {
        let a = registry().counter("test.metrics.shared");
        let b = registry().counter("test.metrics.shared");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = registry().gauge("test.metrics.gauge");
        g.set(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let h = registry().histogram_with("test.metrics.hist", &[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1045);
        let snap = registry().snapshot();
        let hs = snap
            .histograms
            .iter()
            .find(|s| s.name == "test.metrics.hist")
            .expect("registered");
        // <=1: {0,1}; <=4: {2,4}; <=16: {5,16}; overflow: {17,1000}.
        assert_eq!(hs.buckets, vec![2, 2, 2, 2]);
    }

    #[test]
    fn histogram_keeps_first_bounds() {
        let a = registry().histogram_with("test.metrics.stable", &[10]);
        let b = registry().histogram_with("test.metrics.stable", &[99, 100]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.bounds, vec![10]);
    }

    #[test]
    fn macros_cache_one_handle() {
        let c1: *const Counter = counter!("test.metrics.macro");
        let c2: *const Counter = counter!("test.metrics.macro");
        // Two *expansion sites* have two statics, but both must resolve
        // to the same underlying counter.
        counter!("test.metrics.macro").add(5);
        assert_eq!(unsafe { (*c1).get() }, 5);
        assert_eq!(unsafe { (*c2).get() }, 5);
    }
}
