//! `taxo-obs` — the workspace's zero-dependency observability layer.
//!
//! Production question this crate answers: *where did the last expansion
//! spend its time, and how many candidates did each stage drop?* — from
//! instrumentation, not from log scraping or rerunning under a profiler.
//!
//! Three pieces:
//!
//! 1. **Metrics** ([`registry`]): a process-global [`MetricRegistry`] of
//!    atomic [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s,
//!    addressed by dotted names (`"expand.candidates_scored"`). Handles
//!    are `Arc`s; the [`counter!`]/[`gauge!`]/[`histogram!`] macros cache
//!    the registry lookup in a `static`, so hot paths pay one atomic add.
//! 2. **Spans** ([`span!`]): lightweight hierarchical wall-time phases
//!    with RAII guards. Aggregation is keyed by the span's dotted path in
//!    a global store, so time recorded on `taxo_nn::parallel` worker
//!    threads lands in the same aggregate as the spawning thread's.
//! 3. **Reporters** ([`report`]): human-readable text and JSON-lines
//!    renderings of a [`MetricsSnapshot`], selected by the `TAXO_LOG`
//!    (live span-close lines on stderr) and `TAXO_METRICS` (end-of-run
//!    summary) environment knobs, plus [`snapshot`] for programmatic
//!    access.
//!
//! # Determinism contract
//!
//! Instrumentation is **purely additive**: this crate records values but
//! offers no way for the instrumented code to branch on them, and every
//! counter/histogram in the workspace records *work counts* (items
//! scored, edges attached), never timings — so the recorded metric
//! values are identical at any `TAXO_THREADS` setting. Wall-clock time
//! lives only in span aggregates, which are excluded from determinism
//! comparisons. Recording is always on (the knobs only select
//! *reporting*), which keeps the hot path branch-free and means enabling
//! `TAXO_METRICS` cannot perturb results.
//!
//! # Example
//!
//! ```
//! use taxo_obs::{counter, histogram, span};
//!
//! {
//!     let _phase = span!("pipeline.mlm_pretrain");
//!     counter!("train.mlm.examples").add(128);
//!     histogram!("expand.candidates_per_query").observe(7);
//! } // span closes here and its wall time is aggregated
//!
//! let snap = taxo_obs::snapshot();
//! assert!(snap.counters.iter().any(|c| c.name == "train.mlm.examples"));
//! ```

mod metrics;
pub mod report;
pub mod span;

pub use metrics::{
    registry, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot,
    MetricRegistry, DEFAULT_BOUNDS,
};
pub use span::{SpanGuard, SpanSnapshot};

/// A point-in-time copy of every metric and span aggregate, sorted by
/// name so two snapshots of identical recordings compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
    pub spans: Vec<SpanSnapshot>,
}

impl MetricsSnapshot {
    /// The thread-count-invariant part of the snapshot: everything except
    /// span wall-times. Two runs of the same deterministic workload must
    /// produce equal `deterministic()` views at any `TAXO_THREADS`.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            spans: Vec::new(),
        }
    }

    /// Looks up a counter value by name (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// True when nothing has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

/// Snapshots the global registry *and* the span store.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = registry().snapshot();
    snap.spans = span::snapshot_spans();
    snap
}

/// Zeroes every metric value and clears span aggregates. Cached handles
/// (from [`counter!`] etc.) stay valid: values are reset in place.
/// Intended for tests and long-running processes that report per-window.
pub fn reset() {
    registry().reset();
    span::reset_spans();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registry is shared across tests in this binary; use
    // unique metric names per test and never reset() here (reset-based
    // behaviour is covered by the dedicated integration test binaries).

    #[test]
    fn snapshot_contains_recorded_metrics() {
        counter!("test.lib.counter").add(3);
        gauge!("test.lib.gauge").set(-7);
        histogram!("test.lib.hist").observe(5);
        let snap = snapshot();
        assert_eq!(snap.counter("test.lib.counter"), 3);
        assert!(snap
            .gauges
            .iter()
            .any(|g| g.name == "test.lib.gauge" && g.value == -7));
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.lib.hist")
            .expect("histogram registered");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 5);
    }

    #[test]
    fn deterministic_view_drops_spans() {
        {
            let _g = span!("test.lib.span");
        }
        let snap = snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "test.lib.span"));
        assert!(snap.deterministic().spans.is_empty());
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        counter!("test.lib.zzz").inc();
        counter!("test.lib.aaa").inc();
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
