//! Reporters: render a [`MetricsSnapshot`] as human-readable text or
//! JSON-lines, and the `TAXO_LOG` / `TAXO_METRICS` environment knobs.
//!
//! * `TAXO_LOG=text|json` — emit one line to stderr every time a span
//!   closes (live phase timing). Unset, empty or `0` disables.
//! * `TAXO_METRICS=text|json` — [`report_if_configured`] (called by the
//!   `repro` binary and other drivers at the end of a run) dumps the
//!   full snapshot to stderr in that format. Unset disables the dump;
//!   recording itself is always on.
//!
//! The JSON-lines format is one self-contained object per line, so the
//! file can be consumed with nothing fancier than a line-by-line parser:
//!
//! ```text
//! {"type":"counter","name":"expand.attached","value":42}
//! {"type":"gauge","name":"incremental.known_pairs","value":1093}
//! {"type":"histogram","name":"expand.candidates_per_query","count":57,"sum":303,"buckets":[{"le":1,"count":3},…,{"le":null,"count":0}]}
//! {"type":"span","name":"pipeline.mlm_pretrain","count":1,"total_ms":1482.112,"max_ms":1482.112}
//! ```

use crate::MetricsSnapshot;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::OnceLock;

/// Output format of a reporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    Text,
    JsonLines,
}

fn parse_format(value: &str) -> Option<Format> {
    match value.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "false" => None,
        "json" | "jsonl" | "json-lines" => Some(Format::JsonLines),
        // Any other truthy value means "give me something readable".
        _ => Some(Format::Text),
    }
}

fn env_format(var: &str) -> Option<Format> {
    std::env::var(var).ok().as_deref().and_then(parse_format)
}

/// The live span-logging format (`TAXO_LOG`), read once per process.
pub fn log_format() -> Option<Format> {
    static FMT: OnceLock<Option<Format>> = OnceLock::new();
    *FMT.get_or_init(|| env_format("TAXO_LOG"))
}

/// The end-of-run report format (`TAXO_METRICS`), read once per process.
pub fn metrics_format() -> Option<Format> {
    static FMT: OnceLock<Option<Format>> = OnceLock::new();
    *FMT.get_or_init(|| env_format("TAXO_METRICS"))
}

/// Called by span guards on drop; emits a live line when `TAXO_LOG` asks
/// for one. Never touches the recorded aggregates.
pub(crate) fn log_span_close(path: &str, ns: u64) {
    let Some(fmt) = log_format() else {
        return;
    };
    let ms = ns as f64 / 1e6;
    match fmt {
        Format::Text => eprintln!("[taxo-obs] {path} {ms:.3}ms"),
        Format::JsonLines => eprintln!(
            "{{\"type\":\"span_close\",\"name\":{},\"ms\":{ms:.3}}}",
            json_string(path)
        ),
    }
}

/// Minimal JSON string encoder (the workspace is dependency-free, so no
/// serde): escapes quotes, backslashes and control characters.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Human-readable report: spans as a wall-time table (hierarchy shown by
/// the dotted paths), then counters, gauges and histograms.
pub fn render_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("== spans (wall time) ==\n");
        let width = snap.spans.iter().map(|s| s.path.len()).max().unwrap_or(0);
        for s in &snap.spans {
            let _ = writeln!(
                out,
                "{:width$}  x{:<6} total {:>12.3}ms  max {:>12.3}ms",
                s.path,
                s.count,
                s.total_ms(),
                s.max_ns as f64 / 1e6,
            );
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("== counters ==\n");
        let width = snap
            .counters
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0);
        for c in &snap.counters {
            let _ = writeln!(out, "{:width$}  {}", c.name, c.value);
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("== gauges ==\n");
        let width = snap.gauges.iter().map(|g| g.name.len()).max().unwrap_or(0);
        for g in &snap.gauges {
            let _ = writeln!(out, "{:width$}  {}", g.name, g.value);
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("== histograms ==\n");
        for h in &snap.histograms {
            let mean = if h.count > 0 {
                h.sum as f64 / h.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{}  n={} sum={} mean={mean:.2}",
                h.name, h.count, h.sum
            );
            for (i, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "  <= {b:<8} {count}");
                    }
                    None => {
                        let _ = writeln!(out, "  >  {:<8} {count}", h.bounds.last().unwrap_or(&0));
                    }
                }
            }
        }
    }
    out
}

/// JSON-lines report: one object per metric (see the module docs for the
/// line shapes). Deterministically ordered (counters, gauges,
/// histograms, spans; each sorted by name).
pub fn render_json_lines(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
            json_string(&c.name),
            c.value
        );
    }
    for g in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
            json_string(&g.name),
            g.value
        );
    }
    for h in &snap.histograms {
        let mut buckets = String::new();
        for (i, &count) in h.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            match h.bounds.get(i) {
                Some(b) => {
                    let _ = write!(buckets, "{{\"le\":{b},\"count\":{count}}}");
                }
                None => {
                    let _ = write!(buckets, "{{\"le\":null,\"count\":{count}}}");
                }
            }
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"buckets\":[{buckets}]}}",
            json_string(&h.name),
            h.count,
            h.sum
        );
    }
    for s in &snap.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":{},\"count\":{},\"total_ms\":{:.3},\"max_ms\":{:.3}}}",
            json_string(&s.path),
            s.count,
            s.total_ms(),
            s.max_ns as f64 / 1e6
        );
    }
    out
}

/// Dumps the current snapshot to stderr in the `TAXO_METRICS` format, if
/// one is configured. Drivers call this once at the end of a run.
pub fn report_if_configured() {
    let Some(fmt) = metrics_format() else {
        return;
    };
    let snap = crate::snapshot();
    let rendered = match fmt {
        Format::Text => render_text(&snap),
        Format::JsonLines => render_json_lines(&snap),
    };
    let mut stderr = std::io::stderr().lock();
    let _ = stderr.write_all(rendered.as_bytes());
}

/// Writes the current snapshot to `path` as JSON-lines (the
/// `repro --metrics-json` backend).
pub fn write_json_lines(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render_json_lines(&crate::snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, SpanSnapshot};

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "a.count".into(),
                value: 7,
            }],
            gauges: vec![GaugeSnapshot {
                name: "b.gauge".into(),
                value: -3,
            }],
            histograms: vec![HistogramSnapshot {
                name: "c.hist".into(),
                bounds: vec![1, 4],
                buckets: vec![2, 1, 0],
                count: 3,
                sum: 6,
            }],
            spans: vec![SpanSnapshot {
                path: "d.span".into(),
                count: 2,
                total_ns: 1_500_000,
                max_ns: 1_000_000,
            }],
        }
    }

    #[test]
    fn text_report_mentions_every_metric() {
        let text = render_text(&sample());
        for needle in ["a.count", "b.gauge", "c.hist", "d.span", "x2"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn json_lines_are_one_object_per_line() {
        let out = render_json_lines(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(out.contains("\"type\":\"counter\""));
        assert!(out.contains("\"le\":null"));
        assert!(out.contains("\"total_ms\":1.500"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn format_parsing() {
        assert_eq!(parse_format(""), None);
        assert_eq!(parse_format("0"), None);
        assert_eq!(parse_format("off"), None);
        assert_eq!(parse_format("json"), Some(Format::JsonLines));
        assert_eq!(parse_format("JSONL"), Some(Format::JsonLines));
        assert_eq!(parse_format("text"), Some(Format::Text));
        assert_eq!(parse_format("1"), Some(Format::Text));
    }
}
