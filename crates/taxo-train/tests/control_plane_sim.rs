//! The deterministic control-plane simulation suite — the proof the
//! continuous-learning loop is safe to run against live traffic.
//!
//! Every scenario replays a fixed, seeded traffic trace (score requests
//! interleaved with ingest batches carrying click drift) against a real
//! in-process server, drives [`taxo_train::ControlPlane`] epochs
//! synchronously between trace segments, and asserts:
//!
//! * **Decision determinism** — the exact promote/rollback sequence
//!   (full [`Decision`] values, integer evidence included) is identical
//!   across repeated runs *and* across worker counts (1 vs 8), because
//!   shadow sampling is a pure function of query id and seed and every
//!   training stage is seeded.
//! * **Shadow purity** — a server with the tap armed and a trainer
//!   retraining-and-rejecting every epoch serves responses bit-identical
//!   to a twin that never retrained: shadow scoring cannot contaminate
//!   live responses, and a rejected candidate leaves no trace.
//! * **Chaos convergence** — with seeded faults (crash mid-promotion on
//!   a durable server; a faulted shadow scorer), the system converges:
//!   the acked-version ledger stays contiguous, recovery reproduces the
//!   pre-crash state exactly once (the promotion marker replays as an
//!   empty op), and the next clean epoch promotes.
//!
//! Fault plans are process-global, so every test serializes on one lock
//! (the simulation-harness pattern shared with the recovery suite).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use taxo_core::Vocabulary;
use taxo_expand::{
    DetectorConfig, ExpansionConfig, HypoDetector, IncrementalExpander, RelationalConfig,
    RelationalModel,
};
use taxo_serve::{
    candidate_key, json::Value, Client, DurabilityConfig, FsyncPolicy, Reply, ServeConfig, Server,
};
use taxo_synth::{ClickConfig, ClickLog, Panel, World, WorldConfig};
use taxo_train::{
    ControlPlane, Decision, GateConfig, LatencyProbe, PanelOracle, RejectReason, TrainConfig,
    Verdict,
};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn scratch_dir(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "taxo-train-sim-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic serving fixture: a synthetic world, a vanilla
/// (untrained-MLP) detector, and an expander pre-seeded with the first
/// half of the click log. The second half, split into batches, is the
/// drift the trainer learns from.
fn fixture(seed: u64) -> (Arc<Vocabulary>, IncrementalExpander, ClickLog, World) {
    let world = World::generate(&WorldConfig {
        target_nodes: 120,
        ..WorldConfig::tiny(seed)
    });
    let log = ClickLog::generate(
        &world,
        &ClickConfig {
            n_events: 4_000,
            ..ClickConfig::tiny(seed)
        },
    );
    let relational = RelationalModel::vanilla(&world.vocab, &[], &RelationalConfig::tiny(seed));
    let detector = HypoDetector::new(Some(relational), None, &DetectorConfig::tiny(seed));
    let cfg = ExpansionConfig::builder().threshold(0.6).build().unwrap();
    let mut expander = IncrementalExpander::new(detector, world.existing.clone(), cfg);
    let half = log.records.len() / 2;
    expander.ingest(&world.vocab, &log.records[..half]);
    let vocab = Arc::new(world.vocab.clone());
    (vocab, expander, log, world)
}

fn ingest_batches(log: &ClickLog, n: usize) -> Vec<&[taxo_synth::ClickRecord]> {
    let tail = &log.records[log.records.len() / 2..];
    let per = tail.len().div_ceil(n);
    tail.chunks(per).collect()
}

fn wire_batch(vocab: &Vocabulary, batch: &[taxo_synth::ClickRecord]) -> Vec<(String, String, u64)> {
    batch
        .iter()
        .map(|r| (vocab.name(r.query).to_owned(), r.item_text.clone(), r.count))
        .collect()
}

/// A fixed, sorted list of scorable query terms derived from the
/// expander's initial candidate universe — the same list on every run.
fn score_queries(vocab: &Vocabulary, expander: &IncrementalExpander, n: usize) -> Vec<String> {
    let mut queries: Vec<_> = expander.candidate_pairs().iter().map(|p| p.query).collect();
    queries.sort_unstable();
    queries.dedup();
    queries
        .into_iter()
        .take(n)
        .map(|q| vocab.name(q).to_owned())
        .collect()
}

/// The trainer configuration every scenario starts from: retrain every 3
/// versions, mirror 1-in-2 queries, fine-tune 3 epochs, no latency gate
/// (the probe is fixed at 0 µs so wall clock never reaches a decision).
fn sim_train_config(seed: u64) -> TrainConfig {
    TrainConfig {
        retrain_every: 3,
        shadow_sample: 2,
        shadow_min: 1,
        detector: DetectorConfig {
            epochs: 3,
            ..DetectorConfig::tiny(seed)
        },
        gate: GateConfig {
            min_precision: 0.0,
            max_latency_us: u64::MAX,
        },
        seed,
        ..TrainConfig::default()
    }
}

/// One served score response, reduced to its bit-exact key:
/// `(version, query, ranked (term, score bits, attached))`.
type Transcript = Vec<(u64, String, Vec<(String, u32, bool)>)>;

fn score_into(client: &mut Client, queries: &[String], transcript: &mut Transcript) {
    for q in queries {
        match client.score(q, Some(5)).expect("score request") {
            Reply::Ok(v) => {
                let version = v
                    .get("version")
                    .and_then(Value::as_u64)
                    .expect("score reply carries a version");
                transcript.push((version, q.clone(), candidate_key(&v).unwrap_or_default()));
            }
            other => panic!("score rejected: {other:?}"),
        }
    }
}

fn ingest_one(client: &mut Client, vocab: &Vocabulary, batch: &[taxo_synth::ClickRecord]) -> u64 {
    match client.ingest(&wire_batch(vocab, batch)).expect("ingest") {
        Reply::Ok(v) => v
            .get("version")
            .and_then(Value::as_u64)
            .expect("ingest ack carries a version"),
        other => panic!("ingest rejected: {other:?}"),
    }
}

struct SimRun {
    decisions: Vec<Decision>,
    transcript: Transcript,
    acked: Vec<u64>,
    final_version: u64,
}

/// The full 8-segment decision trace: scores + one ingest batch per
/// segment, a control epoch wherever one is due, and a deliberate
/// tap-disarmed window (segments 4–5) so the second epoch is starved.
fn decision_sim(seed: u64, workers: usize) -> SimRun {
    taxo_fault::disarm();
    let (vocab, expander, log, world) = fixture(seed);
    let queries = score_queries(&vocab, &expander, 24);
    let batches = ingest_batches(&log, 8);
    let handle = Server::builder(expander, Arc::clone(&vocab))
        .config(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("server binds");
    let ctl = handle.controller();
    let mut plane = ControlPlane::new(sim_train_config(seed));
    let mut oracle = PanelOracle::new(Panel::new(3, 0.05, seed), |p, c| {
        world.is_true_hypernym(p, c)
    });
    let probe = LatencyProbe::Fixed(0);
    ctl.shadow_tap().arm(2, seed);

    let mut client = Client::connect(handle.addr()).expect("client connects");
    let mut run = SimRun {
        decisions: Vec::new(),
        transcript: Transcript::new(),
        acked: Vec::new(),
        final_version: 0,
    };
    for (i, batch) in batches.iter().enumerate() {
        score_into(&mut client, &queries, &mut run.transcript);
        run.acked.push(ingest_one(&mut client, &vocab, batch));
        if let Some(d) = plane.run_epoch(&ctl, &mut oracle, &probe) {
            run.decisions.push(d);
        }
        // Starve the second epoch: no samples mirrored in segments 4–5.
        if i == 2 {
            ctl.shadow_tap().disarm();
        }
        if i == 4 {
            ctl.shadow_tap().arm(2, seed);
        }
    }
    run.final_version = ctl.version();
    drop(client);
    handle.shutdown_and_join();
    run
}

/// (a) Same seed ⇒ the same decisions, the same served bits, the same
/// ledger — across repeated runs and across worker counts.
#[test]
fn decisions_are_identical_across_runs_and_worker_counts() {
    let _g = test_lock();
    let base = decision_sim(91, 1);

    // The trace is interesting: promotions and a rollback both occur.
    assert!(
        base.decisions
            .iter()
            .any(|d| matches!(d.verdict, Verdict::Promoted { .. })),
        "trace must promote at least once: {:?}",
        base.decisions
    );
    assert!(
        base.decisions
            .iter()
            .any(|d| d.verdict == Verdict::Rejected(RejectReason::ShadowStarved)),
        "the disarmed window must starve one epoch: {:?}",
        base.decisions
    );
    // Promotions consume versions: the acked ingest ledger is contiguous
    // with one skip per promotion.
    let promotions = base
        .decisions
        .iter()
        .filter(|d| matches!(d.verdict, Verdict::Promoted { .. }))
        .count() as u64;
    assert_eq!(base.final_version, base.acked.len() as u64 + promotions);

    let rerun = decision_sim(91, 1);
    assert_eq!(base.decisions, rerun.decisions, "rerun decisions");
    assert_eq!(base.transcript, rerun.transcript, "rerun transcript");
    assert_eq!(base.acked, rerun.acked, "rerun ledger");

    let wide = decision_sim(91, 8);
    assert_eq!(base.decisions, wide.decisions, "8-worker decisions");
    assert_eq!(base.transcript, wide.transcript, "8-worker transcript");
    assert_eq!(base.acked, wide.acked, "8-worker ledger");
}

/// (b)+(c) A trainer that retrains and is *rejected* every epoch leaves
/// the served byte stream bit-identical to a twin that never retrained:
/// shadow scoring is pure, and a rejected candidate vanishes without a
/// trace.
#[test]
fn rejected_candidates_leave_serving_bit_identical() {
    let _g = test_lock();
    taxo_fault::disarm();
    let seed = 92;

    let run_twin = |train: bool| -> (Transcript, Vec<Decision>) {
        let (vocab, expander, log, world) = fixture(seed);
        let queries = score_queries(&vocab, &expander, 24);
        let batches = ingest_batches(&log, 6);
        let handle = Server::builder(expander, Arc::clone(&vocab))
            .bind("127.0.0.1:0")
            .expect("server binds");
        let ctl = handle.controller();
        // shadow_min = MAX: every epoch retrains, shadow-scores whatever
        // was mirrored, and is then rejected as starved.
        let mut plane = ControlPlane::new(TrainConfig {
            shadow_min: u64::MAX,
            ..sim_train_config(seed)
        });
        let mut oracle = PanelOracle::new(Panel::new(3, 0.05, seed), |p, c| {
            world.is_true_hypernym(p, c)
        });
        let probe = LatencyProbe::Fixed(0);
        if train {
            ctl.shadow_tap().arm(2, seed);
        }
        let mut client = Client::connect(handle.addr()).expect("client connects");
        let mut transcript = Transcript::new();
        let mut decisions = Vec::new();
        for batch in &batches {
            score_into(&mut client, &queries, &mut transcript);
            ingest_one(&mut client, &vocab, batch);
            if train {
                if let Some(d) = plane.run_epoch(&ctl, &mut oracle, &probe) {
                    decisions.push(d);
                }
            }
        }
        score_into(&mut client, &queries, &mut transcript);
        drop(client);
        handle.shutdown_and_join();
        (transcript, decisions)
    };

    let (shadowed, decisions) = run_twin(true);
    let (untouched, _) = run_twin(false);
    assert!(
        decisions.len() >= 2,
        "the trainer must actually retrain: {decisions:?}"
    );
    assert!(
        decisions
            .iter()
            .all(|d| d.verdict == Verdict::Rejected(RejectReason::ShadowStarved)),
        "every candidate must be rejected: {decisions:?}"
    );
    assert_eq!(
        shadowed, untouched,
        "armed tap + rejected retrains must serve bit-identical responses"
    );
}

/// (d1) Crash mid-promotion on a durable server: the promotion marker is
/// already in the WAL, so recovery replays it as an empty op — the
/// version is consumed exactly once, no ingest is lost or doubled, the
/// recovered server serves the *pre-promotion* detector's exact bits,
/// and the next clean epoch promotes.
#[test]
fn crash_mid_promotion_converges_with_exactly_once_accounting() {
    let _g = test_lock();
    taxo_fault::disarm();
    let seed = 93;
    let dir = scratch_dir("promote-crash");
    let (vocab, expander, log, world) = fixture(seed);
    let detector = expander.detector().clone();
    let expansion_cfg = expander.expansion_config().clone();
    let queries = score_queries(&vocab, &expander, 24);
    let batches = ingest_batches(&log, 6);

    let handle = Server::builder(expander, Arc::clone(&vocab))
        .durability(DurabilityConfig::Wal {
            dir: dir.clone(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 100, // force recovery through the WAL
        })
        .bind("127.0.0.1:0")
        .expect("durable server binds");
    let ctl = handle.controller();
    let mut plane = ControlPlane::new(sim_train_config(seed));
    let mut oracle = PanelOracle::new(Panel::new(3, 0.05, seed), |p, c| {
        world.is_true_hypernym(p, c)
    });
    let probe = LatencyProbe::Fixed(0);
    ctl.shadow_tap().arm(2, seed);

    let mut client = Client::connect(handle.addr()).expect("client connects");
    let mut transcript = Transcript::new();
    for batch in &batches[..3] {
        score_into(&mut client, &queries, &mut transcript);
        ingest_one(&mut client, &vocab, batch);
    }
    // Consistent pre-crash state for the exactly-once comparison.
    let (base_version, pre_state) = ctl.export_state().expect("export");
    assert_eq!(base_version, 3);

    // The fault: the first promotion apply kills the ingest thread after
    // the WAL write, before the snapshot publishes.
    taxo_fault::arm(
        taxo_fault::FaultPlan::parse(&format!("seed={seed};train.promote=once:1:fail"))
            .expect("valid plan"),
    );
    let decision = plane
        .run_epoch(&ctl, &mut oracle, &probe)
        .expect("epoch is due");
    assert_eq!(
        decision.verdict,
        Verdict::Rejected(RejectReason::Control),
        "a crashed promotion surfaces as a control rejection"
    );
    assert!(handle.crashed(), "the injected fault must crash the server");
    drop(client);
    handle.shutdown_and_join();
    taxo_fault::disarm();

    // Recovery under the *original* detector: the marker replays as an
    // empty op, so the version is consumed but nothing is applied.
    let (recovered, report) =
        Server::recover(&dir, detector.clone(), expansion_cfg, &vocab).expect("recovery succeeds");
    assert_eq!(
        report.final_version,
        base_version + 1,
        "the promotion consumed exactly one durable version"
    );
    assert_eq!(
        recovered.candidate_pairs(),
        pre_state.pairs,
        "no ingest evidence lost or doubled across the crash"
    );
    let mut recovered_edges: Vec<(u32, u32)> = recovered
        .taxonomy()
        .edges()
        .map(|e| (e.parent.0, e.child.0))
        .collect();
    recovered_edges.sort_unstable();
    let mut pre_edges: Vec<(u32, u32)> = pre_state
        .taxonomy
        .edges()
        .map(|e| (e.parent.0, e.child.0))
        .collect();
    pre_edges.sort_unstable();
    assert_eq!(recovered_edges, pre_edges, "taxonomy identical post-crash");

    // Resume serving; the rejected-in-flight candidate never took
    // effect, so served bits match the pre-promotion snapshot's.
    let resumed = Server::builder(recovered, Arc::clone(&vocab))
        .durability(DurabilityConfig::Wal {
            dir: dir.clone(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 100,
        })
        .recovered(&report)
        .bind("127.0.0.1:0")
        .expect("recovered server binds");
    let rctl = resumed.controller();
    rctl.shadow_tap().arm(2, seed);
    let mut client = Client::connect(resumed.addr()).expect("client reconnects");
    let mut resumed_transcript = Transcript::new();
    score_into(&mut client, &queries, &mut resumed_transcript);
    let last_segment: Transcript = transcript[transcript.len() - queries.len()..]
        .iter()
        .map(|(_, q, key)| (0, q.clone(), key.clone()))
        .collect();
    let resumed_keys: Transcript = resumed_transcript
        .iter()
        .map(|(_, q, key)| (0, q.clone(), key.clone()))
        .collect();
    assert_eq!(
        resumed_keys, last_segment,
        "post-recovery scores are bit-identical to pre-crash serving"
    );

    // Convergence: the next clean epoch (fresh plane, no faults) retrains
    // from the recovered state and promotes.
    let mut plane = ControlPlane::new(sim_train_config(seed));
    let decision = plane
        .run_epoch(&rctl, &mut oracle, &probe)
        .expect("epoch is due after recovery");
    match decision.verdict {
        Verdict::Promoted { version, published } => {
            assert_eq!(version, report.final_version + 1);
            assert!(published);
            assert_eq!(rctl.version(), version);
        }
        other => panic!("the post-recovery epoch must promote, got {other:?}"),
    }
    // And the ingest ledger continues without gap or reuse.
    let v = ingest_one(&mut client, &vocab, batches[3]);
    assert_eq!(v, report.final_version + 2);
    drop(client);
    resumed.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// (d2) A faulted shadow scorer defers promotion deterministically: the
/// epoch records a `ShadowFaulted` rollback, serving is untouched, and
/// the next clean epoch promotes. The whole scenario replays to the
/// same decision sequence.
#[test]
fn faulted_shadow_scorer_defers_promotion_deterministically() {
    let _g = test_lock();
    let seed = 94;

    let run = || -> Vec<Decision> {
        taxo_fault::disarm();
        let (vocab, expander, log, world) = fixture(seed);
        let queries = score_queries(&vocab, &expander, 24);
        let batches = ingest_batches(&log, 6);
        let handle = Server::builder(expander, Arc::clone(&vocab))
            .bind("127.0.0.1:0")
            .expect("server binds");
        let ctl = handle.controller();
        let mut plane = ControlPlane::new(sim_train_config(seed));
        let mut oracle = PanelOracle::new(Panel::new(3, 0.05, seed), |p, c| {
            world.is_true_hypernym(p, c)
        });
        let probe = LatencyProbe::Fixed(0);
        ctl.shadow_tap().arm(2, seed);
        let mut client = Client::connect(handle.addr()).expect("client connects");
        let mut transcript = Transcript::new();
        let mut decisions = Vec::new();

        for batch in &batches[..3] {
            score_into(&mut client, &queries, &mut transcript);
            ingest_one(&mut client, &vocab, batch);
        }
        // Every shadow score of the first epoch faults.
        taxo_fault::arm(
            taxo_fault::FaultPlan::parse(&format!("seed={seed};train.shadow=always:fail"))
                .expect("valid plan"),
        );
        let d = plane
            .run_epoch(&ctl, &mut oracle, &probe)
            .expect("first epoch due");
        decisions.push(d);
        taxo_fault::disarm();
        assert!(
            !handle.crashed(),
            "a faulted shadow scorer must not touch serving"
        );

        for batch in &batches[3..6] {
            score_into(&mut client, &queries, &mut transcript);
            ingest_one(&mut client, &vocab, batch);
        }
        let d = plane
            .run_epoch(&ctl, &mut oracle, &probe)
            .expect("second epoch due");
        decisions.push(d);
        drop(client);
        handle.shutdown_and_join();
        decisions
    };

    let first = run();
    assert_eq!(
        first[0].verdict,
        Verdict::Rejected(RejectReason::ShadowFaulted),
        "faulted evidence defers: {first:?}"
    );
    assert!(first[0].faulted > 0 && first[0].judged == 0);
    assert!(
        matches!(first[1].verdict, Verdict::Promoted { .. }),
        "the clean epoch promotes: {first:?}"
    );
    let second = run();
    assert_eq!(first, second, "chaos decisions replay bit-for-bit");
}
