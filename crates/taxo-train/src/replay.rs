//! WAL replay as a training source: tail a serve write-ahead log into
//! the same ingest batches the server applied.
//!
//! The live path retrains from
//! [`taxo_serve::ServeController::export_state`]; this module is the
//! cold path — a trainer process (or a post-crash restart) that has only
//! the WAL on disk can rebuild the evidence stream batch by batch with a
//! [`taxo_wal::WalCursor`] and feed it to a
//! [`taxo_expand::IncrementalExpander`] exactly as the serving ingest
//! thread did. Frames are decoded with the serve codec
//! ([`taxo_serve::durable::decode_ingest_op`]) and record matching
//! mirrors the server's: the query must resolve in the vocabulary, item
//! text is left for the expander's concept matcher.

use std::path::Path;
use taxo_core::Vocabulary;
use taxo_serve::durable::decode_ingest_op;
use taxo_serve::IngestRecord;
use taxo_synth::ClickRecord;
use taxo_wal::{WalCursor, WalError};

/// An incremental reader of a serve WAL, yielding each appended ingest
/// operation exactly once as `(version, records)`.
///
/// Promotions appear in the log as empty-record operations (they consume
/// a version to keep recovery's sequence dense); [`WalTail::poll`]
/// returns them as empty batches so callers can track versions, and
/// [`matched_clicks`] of an empty batch is naturally empty.
pub struct WalTail {
    cursor: WalCursor,
}

impl WalTail {
    /// Tails `path` starting at byte `from` (0 for the whole log, or a
    /// manifest's `wal_offset` to skip what a snapshot already covers).
    pub fn new(path: &Path, from: u64) -> WalTail {
        WalTail {
            cursor: WalCursor::new(path, from),
        }
    }

    /// Byte offset of the next unread frame.
    pub fn offset(&self) -> u64 {
        self.cursor.offset()
    }

    /// Decodes up to `max` newly appended ingest operations. Torn or
    /// incomplete tail frames are invisible until completed; a frame
    /// that decodes as something other than an ingest op is an error
    /// (the serve WAL contains nothing else).
    pub fn poll(&mut self, max: usize) -> Result<Vec<(u64, Vec<IngestRecord>)>, WalError> {
        self.cursor
            .poll(max)?
            .iter()
            .map(|payload| decode_ingest_op(payload))
            .collect()
    }
}

/// Matches one WAL batch's records the way the serving ingest thread
/// does: drop records whose query is not in the vocabulary, keep item
/// text raw for [`taxo_expand::IncrementalExpander::ingest`]'s concept
/// matcher. Feeding the results to an expander restored from the same
/// base state reproduces the server's post-batch state exactly.
pub fn matched_clicks(vocab: &Vocabulary, records: &[IngestRecord]) -> Vec<ClickRecord> {
    records
        .iter()
        .filter_map(|r| {
            vocab.get(&r.query).map(|query| ClickRecord {
                query,
                item_text: r.item.clone(),
                count: r.count,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxo_serve::durable::encode_ingest_op;
    use taxo_wal::WalWriter;

    fn record(query: &str, item: &str, count: u64) -> IngestRecord {
        IngestRecord {
            query: query.to_string(),
            item: item.to_string(),
            count,
        }
    }

    #[test]
    fn tail_decodes_appended_ops_exactly_once() {
        let dir = std::env::temp_dir().join(format!("taxo-train-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);

        let mut wal = WalWriter::open(&path).unwrap();
        let mut tail = WalTail::new(&path, 0);
        assert!(tail.poll(16).unwrap().is_empty());

        wal.append(encode_ingest_op(1, &[record("a", "b", 3)]).as_bytes())
            .unwrap();
        wal.append(encode_ingest_op(2, &[]).as_bytes()).unwrap(); // promotion marker
        wal.sync().unwrap();

        let got = tail.poll(16).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[0].1, vec![record("a", "b", 3)]);
        assert_eq!(got[1], (2, Vec::new()));
        assert!(tail.poll(16).unwrap().is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matching_mirrors_the_server_rule() {
        let mut vocab = Vocabulary::new();
        let apple = vocab.intern("apple");
        let records = [record("apple", "fuji apple", 2), record("ghost", "x", 1)];
        let clicks = matched_clicks(&vocab, &records);
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].query, apple);
        assert_eq!(clicks[0].item_text, "fuji apple");
        assert_eq!(clicks[0].count, 2);
    }
}
