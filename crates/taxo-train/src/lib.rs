//! `taxo-train` — the continuous-learning control plane.
//!
//! The paper's system never stops learning: user behaviors keep arriving,
//! and the deployed detector should eventually benefit from them. This
//! crate closes that loop for the serving stack without ever letting an
//! unvetted model answer live traffic:
//!
//! 1. **Retrain** ([`ControlPlane::retrain`]): every `retrain_every`
//!    ingest versions, export the serving expander's consistent state
//!    (taxonomy + accumulated click pairs) through
//!    [`taxo_serve::ServeController::export_state`], regenerate the
//!    self-supervised dataset from it ([`taxo_expand::generate_dataset`]),
//!    and fine-tune a **clone** of the live detector under a seed derived
//!    from `(cfg.seed, epoch)` — fully deterministic, like every other
//!    training path in the workspace.
//! 2. **Shadow-score** ([`ControlPlane::shadow_eval`]): the server's
//!    [`taxo_serve::ShadowTap`] mirrors a deterministic 1-in-N sample of
//!    live score traffic (a pure function of query id and seed — the
//!    sampled *set* is identical at any worker count). The candidate
//!    snapshot re-answers those queries off the serving path; its scores
//!    feed only the gate and can never contaminate a live response.
//! 3. **Gate and promote** ([`ControlPlane::run_epoch`]): an oracle
//!    (production: humans; here: the [`taxo_synth`] judge panel over
//!    synthetic ground truth) judges the candidate's top attachments.
//!    Only if precision and latency clear [`GateConfig`] does the plane
//!    call [`taxo_serve::ServeController::promote`] — the swap rides the
//!    serving ingest queue, consumes a WAL-logged version, and publishes
//!    through the same hot-swap store as any ingest. Anything else is a
//!    recorded rollback: the live snapshot keeps answering, bit-identical
//!    to a server that never retrained.
//!
//! Every decision is a [`Decision`] value (integer evidence only, so
//! sequences compare with `==` across runs and thread counts); the
//! deterministic simulation suite in `tests/control_plane_sim.rs` pins
//! the promote/rollback sequence bit-for-bit.
//!
//! Observability: `train.epochs`, `train.promotions`, `train.rollbacks`
//! counters plus `train.shadow.*` evidence counters and `train.retrain` /
//! `train.epoch` spans. Fault points [`FAULT_RETRAIN`] and
//! [`FAULT_SHADOW`] (and `taxo_serve::FAULT_PROMOTE` on the serve side)
//! let chaos tests fail each stage at a seeded operation index.

mod config;
mod plane;
mod replay;
mod trainer;

pub use config::{GateConfig, TrainConfig};
pub use plane::{
    ControlPlane, Decision, LatencyProbe, Oracle, PanelOracle, RejectReason, ShadowReport, Verdict,
};
pub use replay::{matched_clicks, WalTail};
pub use trainer::Trainer;

/// Fault point: fails a retrain cycle (the epoch records a
/// [`RejectReason::RetrainFaulted`] rollback and serving is untouched).
pub const FAULT_RETRAIN: &str = "train.retrain";

/// Fault point: fails one shadow score (the epoch's gate defers with
/// [`RejectReason::ShadowFaulted`] — a candidate is never promoted on
/// partial evidence).
pub const FAULT_SHADOW: &str = "train.shadow";
