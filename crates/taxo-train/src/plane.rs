//! The synchronous control-plane core: retrain → shadow-score → gate →
//! promote, one epoch at a time.
//!
//! [`ControlPlane`] is deliberately a plain synchronous state machine —
//! the background thread ([`crate::Trainer`]) just calls
//! [`ControlPlane::run_epoch`] in a poll loop, and the deterministic
//! simulation suite calls it directly between trace segments. Everything
//! an epoch decides is captured in a [`Decision`] whose fields are
//! integers, so two runs (or two thread counts) can be compared with
//! `assert_eq!` on the whole sequence.

use crate::config::TrainConfig;
use crate::{FAULT_RETRAIN, FAULT_SHADOW};
use std::sync::Arc;
use std::time::Instant;
use taxo_core::{ConceptId, Vocabulary};
use taxo_expand::{generate_dataset, DatasetConfig, DetectorConfig, ExpanderState, HypoDetector};
use taxo_obs::{counter, span};
use taxo_serve::{IngestPhase, ServeController, ServeSnapshot, ShadowSample};
use taxo_synth::Panel;

/// Why a candidate was not promoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The retrain stage itself failed (fault injection at
    /// [`crate::FAULT_RETRAIN`]); no candidate was produced.
    RetrainFaulted,
    /// One or more shadow scores were lost to [`crate::FAULT_SHADOW`];
    /// the gate never promotes on partial evidence.
    ShadowFaulted,
    /// Fewer judged shadow attachments than `shadow_min`.
    ShadowStarved,
    /// Oracle precision below the gate threshold.
    Precision,
    /// A shadow score exceeded the gate's latency budget.
    Latency,
    /// The serving control path refused (queue full or shutdown); the
    /// candidate is dropped and the next due epoch retries from scratch.
    Control,
}

/// What one epoch decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Promoted {
        /// Version the promotion consumed.
        version: u64,
        /// `false` when promoted as a prepare awaiting commit.
        published: bool,
    },
    Rejected(RejectReason),
}

/// One control epoch's full record: the evidence (integer counts only,
/// so sequences are `Eq`-comparable across runs) and the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// 1-based control epoch.
    pub epoch: u64,
    /// Ingest version the candidate was trained from.
    pub base_version: u64,
    /// Shadow attachments judged by the oracle.
    pub judged: u64,
    /// Judged attachments the oracle approved.
    pub approved: u64,
    /// Shadow scores lost to fault injection.
    pub faulted: u64,
    /// Slowest shadow score, in the epoch probe's microseconds.
    pub max_latency_us: u64,
    pub verdict: Verdict,
}

impl Decision {
    /// Oracle-approved fraction of judged attachments (0 when nothing
    /// was judged).
    pub fn precision(&self) -> f64 {
        if self.judged == 0 {
            0.0
        } else {
            self.approved as f64 / self.judged as f64
        }
    }
}

/// Shadow-evaluation evidence for one candidate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowReport {
    pub judged: u64,
    pub approved: u64,
    pub faulted: u64,
    pub max_latency_us: u64,
}

/// How shadow-score latency is measured. Production uses [`Wall`];
/// simulations use [`Fixed`] so latency (and therefore the gate) is a
/// pure function of the trace.
///
/// [`Wall`]: LatencyProbe::Wall
/// [`Fixed`]: LatencyProbe::Fixed
#[derive(Debug, Clone, Copy)]
pub enum LatencyProbe {
    Wall,
    /// Every shadow score "takes" exactly this many microseconds.
    Fixed(u64),
}

impl LatencyProbe {
    fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, u64) {
        match self {
            LatencyProbe::Wall => {
                let t = Instant::now();
                let r = f();
                (r, t.elapsed().as_micros() as u64)
            }
            LatencyProbe::Fixed(us) => (f(), *us),
        }
    }
}

/// Judges proposed attachments for the promotion gate. Production would
/// put humans (or a held-out labelled set) behind this; the reproduction
/// uses [`PanelOracle`] over synthetic ground truth.
pub trait Oracle {
    /// Whether `parent` is an acceptable hypernym for `child`.
    fn approve(&mut self, parent: ConceptId, child: ConceptId) -> bool;
}

/// The workspace's stand-in for human evaluation: a seeded
/// [`taxo_synth::Panel`] majority vote over a ground-truth predicate
/// (typically `World::is_true_hypernym`).
pub struct PanelOracle<F> {
    panel: Panel,
    truth: F,
}

impl<F: FnMut(ConceptId, ConceptId) -> bool> PanelOracle<F> {
    pub fn new(panel: Panel, truth: F) -> Self {
        PanelOracle { panel, truth }
    }
}

impl<F: FnMut(ConceptId, ConceptId) -> bool> Oracle for PanelOracle<F> {
    fn approve(&mut self, parent: ConceptId, child: ConceptId) -> bool {
        let truth = (self.truth)(parent, child);
        self.panel.majority(truth)
    }
}

/// The retrain → shadow → gate → promote state machine. One instance per
/// served process; epochs are strictly sequential.
pub struct ControlPlane {
    cfg: TrainConfig,
    epoch: u64,
    /// Ingest version of the last retrain base (0 = never retrained).
    last_version: u64,
    decisions: Vec<Decision>,
}

impl ControlPlane {
    pub fn new(cfg: TrainConfig) -> ControlPlane {
        cfg.validate();
        ControlPlane {
            cfg,
            epoch: 0,
            last_version: 0,
            decisions: Vec::new(),
        }
    }

    pub fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Control epochs run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Every decision taken, in epoch order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Whether serving has advanced far enough past the last retrain
    /// base for a new epoch. Note a promotion itself consumes a version,
    /// so with `retrain_every = N` a promoted epoch leaves N−1 ingest
    /// versions until the next one.
    pub fn due(&self, version: u64) -> bool {
        self.cfg.retrain_every > 0 && version >= self.last_version + self.cfg.retrain_every
    }

    /// Fine-tunes a clone of `base` on the exported serving state under
    /// this epoch's derived seed: the dataset is regenerated from the
    /// *evolved* taxonomy and accumulated click pairs, which is exactly
    /// the paper's self-supervision loop applied to what serving has
    /// learned since deployment. Returns `None` if the
    /// [`crate::FAULT_RETRAIN`] point fails the cycle.
    pub fn retrain(
        &self,
        vocab: &Vocabulary,
        base: &HypoDetector,
        state: &ExpanderState,
    ) -> Option<HypoDetector> {
        if taxo_fault::should_fail(FAULT_RETRAIN) {
            counter!("train.retrain.faulted").inc();
            return None;
        }
        let _g = span!("train.retrain");
        let seed = mix(self.cfg.seed, self.epoch);
        let dataset = generate_dataset(
            &state.taxonomy,
            vocab,
            &state.pairs,
            &DatasetConfig {
                seed,
                ..DatasetConfig::default()
            },
        );
        let mut detector = base.clone();
        let cfg = DetectorConfig {
            seed,
            ..self.cfg.detector.clone()
        };
        detector.train_with_val(vocab, &dataset.train, &dataset.val, &cfg);
        Some(detector)
    }

    /// Scores the mirrored samples against the candidate snapshot and
    /// judges the top attachments. Pure aside from the oracle's own
    /// seeded state; live serving is never touched.
    pub fn shadow_eval(
        &self,
        candidate: &ServeSnapshot,
        samples: &[ShadowSample],
        oracle: &mut dyn Oracle,
        probe: &LatencyProbe,
    ) -> ShadowReport {
        let _g = span!("train.shadow.eval");
        let mut report = ShadowReport::default();
        for sample in samples.iter().take(self.cfg.shadow_max) {
            if taxo_fault::should_fail(FAULT_SHADOW) {
                report.faulted += 1;
                continue;
            }
            let (ranked, us) = probe.measure(|| {
                candidate.score_query_tier(
                    sample.query,
                    self.cfg.max_candidates,
                    self.cfg.top_k,
                    sample.tier,
                )
            });
            report.max_latency_us = report.max_latency_us.max(us);
            for c in &ranked {
                report.judged += 1;
                // Taxonomy edges run query → item (the serving snapshot
                // flags `attached` via `contains_edge(query, item)`), so
                // the query is the hypernym under judgment.
                if oracle.approve(sample.query, c.item) {
                    report.approved += 1;
                }
            }
        }
        counter!("train.shadow.judged").add(report.judged);
        counter!("train.shadow.approved").add(report.approved);
        counter!("train.shadow.faulted").add(report.faulted);
        report
    }

    /// Applies [`GateConfig`](crate::GateConfig) to an epoch's evidence.
    /// Checks are ordered most- to least-fundamental so a given report
    /// always maps to the same reason.
    pub fn gate(&self, report: &ShadowReport) -> Result<(), RejectReason> {
        if report.faulted > 0 {
            return Err(RejectReason::ShadowFaulted);
        }
        if report.judged < self.cfg.shadow_min {
            return Err(RejectReason::ShadowStarved);
        }
        let precision = report.approved as f64 / report.judged.max(1) as f64;
        if precision < self.cfg.gate.min_precision {
            return Err(RejectReason::Precision);
        }
        if report.max_latency_us > self.cfg.gate.max_latency_us {
            return Err(RejectReason::Latency);
        }
        Ok(())
    }

    /// Runs one full epoch against a live server if one is due: export →
    /// retrain → drain the shadow tap → gate → promote-or-rollback.
    /// Returns `None` when not due (nothing counted, nothing recorded).
    pub fn run_epoch(
        &mut self,
        ctl: &ServeController,
        oracle: &mut dyn Oracle,
        probe: &LatencyProbe,
    ) -> Option<Decision> {
        if !self.due(ctl.version()) {
            return None;
        }
        self.epoch += 1;
        counter!("train.epochs").inc();
        let _g = span!("train.epoch");
        let live = ctl.snapshot();
        let mut decision = Decision {
            epoch: self.epoch,
            base_version: live.version,
            judged: 0,
            approved: 0,
            faulted: 0,
            max_latency_us: 0,
            verdict: Verdict::Rejected(RejectReason::Control),
        };
        let (base_version, state) = match ctl.export_state() {
            Ok(x) => x,
            Err(_) => return Some(self.finish(decision)),
        };
        decision.base_version = base_version;
        self.last_version = base_version;
        let Some(retrained) = self.retrain(&live.vocab, &live.detector, &state) else {
            decision.verdict = Verdict::Rejected(RejectReason::RetrainFaulted);
            return Some(self.finish(decision));
        };
        let detector = Arc::new(retrained);
        let candidate = ServeSnapshot::build(
            base_version + 1,
            Arc::clone(&live.vocab),
            Arc::clone(&detector),
            state.taxonomy.clone(),
            &state.pairs,
        );
        let samples = ctl.shadow_tap().drain(self.cfg.shadow_max);
        let report = self.shadow_eval(&candidate, &samples, oracle, probe);
        decision.judged = report.judged;
        decision.approved = report.approved;
        decision.faulted = report.faulted;
        decision.max_latency_us = report.max_latency_us;
        decision.verdict = match self.gate(&report) {
            Err(reason) => Verdict::Rejected(reason),
            Ok(()) => match ctl.promote(detector, IngestPhase::Auto) {
                Ok(out) => Verdict::Promoted {
                    version: out.version,
                    published: out.published,
                },
                Err(_) => Verdict::Rejected(RejectReason::Control),
            },
        };
        Some(self.finish(decision))
    }

    fn finish(&mut self, decision: Decision) -> Decision {
        match decision.verdict {
            Verdict::Promoted { .. } => counter!("train.promotions").inc(),
            Verdict::Rejected(_) => counter!("train.rollbacks").inc(),
        }
        self.decisions.push(decision);
        decision
    }
}

/// splitmix64 — derives per-epoch retrain seeds from the master seed.
fn mix(seed: u64, epoch: u64) -> u64 {
    let mut x = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GateConfig;

    fn plane(min_precision: f64, shadow_min: u64, max_latency_us: u64) -> ControlPlane {
        ControlPlane::new(TrainConfig {
            shadow_min,
            gate: GateConfig {
                min_precision,
                max_latency_us,
            },
            ..TrainConfig::default()
        })
    }

    #[test]
    fn gate_orders_reasons_deterministically() {
        let p = plane(0.7, 2, 100);
        let r = |judged, approved, faulted, lat| ShadowReport {
            judged,
            approved,
            faulted,
            max_latency_us: lat,
        };
        // A faulted score dominates everything else.
        assert_eq!(p.gate(&r(10, 10, 1, 0)), Err(RejectReason::ShadowFaulted));
        assert_eq!(p.gate(&r(1, 1, 0, 0)), Err(RejectReason::ShadowStarved));
        assert_eq!(p.gate(&r(10, 6, 0, 0)), Err(RejectReason::Precision));
        assert_eq!(p.gate(&r(10, 8, 0, 101)), Err(RejectReason::Latency));
        assert_eq!(p.gate(&r(10, 8, 0, 100)), Ok(()));
    }

    #[test]
    fn due_respects_cadence_and_promotion_consumed_versions() {
        let mut p = plane(0.7, 1, u64::MAX);
        assert!(!p.due(3));
        assert!(p.due(4));
        p.last_version = 4;
        assert!(!p.due(7));
        assert!(p.due(8));
        // retrain_every = 0 disables retraining outright.
        let p = ControlPlane::new(TrainConfig {
            retrain_every: 0,
            ..TrainConfig::default()
        });
        assert!(!p.due(u64::MAX / 2));
    }

    #[test]
    fn perfect_panel_echoes_ground_truth() {
        let parent = ConceptId(1);
        let child = ConceptId(2);
        let mut oracle = PanelOracle::new(Panel::new(3, 0.0, 9), |p, c| (p, c) == (parent, child));
        assert!(oracle.approve(parent, child));
        assert!(!oracle.approve(child, parent));
    }

    #[test]
    fn epoch_seeds_differ_but_are_reproducible() {
        assert_ne!(mix(7, 1), mix(7, 2));
        assert_eq!(mix(7, 1), mix(7, 1));
        assert_ne!(mix(7, 1), mix(8, 1));
    }
}
