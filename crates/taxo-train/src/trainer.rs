//! The background trainer thread: a poll loop around
//! [`ControlPlane::run_epoch`].
//!
//! The thread owns nothing serving depends on — it talks to the server
//! exclusively through [`taxo_serve::ServeController`] (whose control
//! jobs ride the ingest queue), so a slow or wedged trainer can never
//! stall a live request. Stopping returns the [`ControlPlane`] with its
//! full decision history for inspection.

use crate::plane::{ControlPlane, LatencyProbe, Oracle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use taxo_serve::ServeController;

/// Handle to a spawned trainer thread.
pub struct Trainer {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<ControlPlane>,
}

impl Trainer {
    /// Arms the server's shadow tap per the plane's config and starts
    /// the poll loop. The loop exits when [`Trainer::stop`] is called or
    /// the server shuts down; the tap is disarmed on the way out.
    pub fn spawn(
        ctl: ServeController,
        mut plane: ControlPlane,
        mut oracle: Box<dyn Oracle + Send>,
        probe: LatencyProbe,
    ) -> Trainer {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("taxo-train".into())
            .spawn(move || {
                let cfg = plane.cfg();
                let (sample, seed, poll) = (cfg.shadow_sample, cfg.seed, cfg.poll);
                if sample > 0 {
                    ctl.shadow_tap().arm(sample, seed);
                }
                while !stop_flag.load(Ordering::Acquire) && !ctl.is_shutdown() {
                    plane.run_epoch(&ctl, &mut *oracle, &probe);
                    std::thread::sleep(poll);
                }
                ctl.shadow_tap().disarm();
                plane
            })
            .expect("spawn trainer thread");
        Trainer { stop, handle }
    }

    /// Signals the loop and joins it, returning the plane (and with it
    /// every [`crate::Decision`] taken).
    pub fn stop(self) -> ControlPlane {
        self.stop.store(true, Ordering::Release);
        self.handle.join().expect("trainer thread panicked")
    }
}
