//! Trainer and promotion-gate configuration.

use std::time::Duration;
use taxo_expand::DetectorConfig;

/// Promotion gate thresholds: a candidate is promoted only if every
/// check passes over the epoch's shadow evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Minimum oracle-approved fraction of judged shadow attachments.
    pub min_precision: f64,
    /// Maximum per-sample shadow scoring latency in microseconds, as
    /// measured by the epoch's [`crate::LatencyProbe`].
    pub max_latency_us: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            min_precision: 0.7,
            max_latency_us: u64::MAX,
        }
    }
}

impl GateConfig {
    /// Parses a `--promote-gate` value: `PRECISION` or
    /// `PRECISION:LATENCY_US` (e.g. `0.7` or `0.7:5000`).
    pub fn parse(spec: &str) -> Result<GateConfig, String> {
        let (prec, lat) = match spec.split_once(':') {
            Some((p, l)) => (p, Some(l)),
            None => (spec, None),
        };
        let min_precision: f64 = prec
            .parse()
            .map_err(|_| format!("bad gate precision {prec:?}"))?;
        if !(0.0..=1.0).contains(&min_precision) {
            return Err(format!("gate precision {min_precision} outside [0, 1]"));
        }
        let max_latency_us = match lat {
            Some(l) => l
                .parse()
                .map_err(|_| format!("bad gate latency {l:?} (want µs)"))?,
            None => u64::MAX,
        };
        Ok(GateConfig {
            min_precision,
            max_latency_us,
        })
    }
}

/// Control-plane configuration. [`TrainConfig::validate`] is called by
/// [`crate::ControlPlane::new`]; invalid values panic there rather than
/// misbehaving silently mid-epoch.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Retrain once the served version has advanced this many versions
    /// past the last retrain base (0 disables retraining entirely).
    pub retrain_every: u64,
    /// Arm the server's shadow tap to mirror 1-in-N score requests
    /// (0 leaves the tap disarmed — epochs then defer on no evidence).
    pub shadow_sample: u64,
    /// Minimum judged shadow attachments for a gate decision; fewer
    /// defers the candidate ([`crate::RejectReason::ShadowStarved`]).
    pub shadow_min: u64,
    /// Most shadow samples drained and scored per epoch.
    pub shadow_max: usize,
    /// Candidate cap per shadow query (mirror of the server's
    /// `max_candidates`).
    pub max_candidates: usize,
    /// Top-ranked attachments judged per shadow query.
    pub top_k: usize,
    /// Fine-tuning hyperparameters; `seed` and `epochs` are taken from
    /// here with the seed re-derived per control epoch.
    pub detector: DetectorConfig,
    pub gate: GateConfig,
    /// Master seed: retrain seeds are derived as `mix(seed, epoch)` and
    /// the shadow tap is armed with it.
    pub seed: u64,
    /// Background trainer poll interval (ignored by the synchronous
    /// [`crate::ControlPlane`] API).
    pub poll: Duration,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            retrain_every: 4,
            shadow_sample: 2,
            shadow_min: 1,
            shadow_max: 256,
            max_candidates: 16,
            top_k: 1,
            detector: DetectorConfig::tiny(0x7EA1),
            gate: GateConfig::default(),
            seed: 0x7EA1,
            poll: Duration::from_millis(25),
        }
    }
}

impl TrainConfig {
    /// Panics on configurations that cannot make progress.
    pub fn validate(&self) {
        assert!(self.shadow_max > 0, "shadow_max must be at least 1");
        assert!(self.top_k > 0, "top_k must be at least 1");
        assert!(self.max_candidates > 0, "max_candidates must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.gate.min_precision),
            "gate precision outside [0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_parse_accepts_precision_and_latency() {
        let g = GateConfig::parse("0.8").unwrap();
        assert_eq!(g.min_precision, 0.8);
        assert_eq!(g.max_latency_us, u64::MAX);
        let g = GateConfig::parse("0.5:2500").unwrap();
        assert_eq!(g.min_precision, 0.5);
        assert_eq!(g.max_latency_us, 2500);
    }

    #[test]
    fn gate_parse_rejects_nonsense() {
        assert!(GateConfig::parse("1.5").is_err());
        assert!(GateConfig::parse("x").is_err());
        assert!(GateConfig::parse("0.7:fast").is_err());
    }
}
