use crate::{CandidatePair, RelationalModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use taxo_core::{ConceptId, Taxonomy, Vocabulary};
use taxo_graph::{
    pretrain_contrastive, ContrastiveConfig, GnnKind, GnnStack, HeteroGraphBuilder,
    PositionEmbeddings, WeightScheme,
};
use taxo_nn::{Matrix, Module, Param};

/// Configuration of the structural representation (Section III-B2).
#[derive(Debug, Clone)]
pub struct StructuralConfig {
    pub gnn_kind: GnnKind,
    /// GNN layers: 1 = one-hop (paper's best), 2 = two-hop (Table IX).
    pub hops: usize,
    /// Node representation dimension.
    pub dim: usize,
    /// Initialise node features from C-BERT `[CLS]` vectors (Eq. 8)
    /// rather than random vectors (`S_Random` vs `S_C-BERT`, Table VI).
    pub init_cbert: bool,
    /// Include user-click edges in the graph (the "- User Click Graph"
    /// ablation removes them, leaving the bare taxonomy).
    pub use_click_graph: bool,
    /// IF·IQF² weights vs. uniform ("- Edge Attribute" ablation).
    pub weight_scheme: WeightScheme,
    /// Run contrastive pretraining ("- Contrastive Learning" ablation).
    pub use_contrastive: bool,
    pub contrastive: ContrastiveConfig,
    /// Concatenate `p_parent`/`p_child` (Eq. 13; "- Position Embedding"
    /// ablation).
    pub use_position: bool,
    pub pos_dim: usize,
    pub seed: u64,
}

impl Default for StructuralConfig {
    fn default() -> Self {
        StructuralConfig {
            gnn_kind: GnnKind::Gcn,
            hops: 1,
            dim: 32,
            init_cbert: true,
            use_click_graph: true,
            weight_scheme: WeightScheme::IfIqf,
            use_contrastive: true,
            contrastive: ContrastiveConfig {
                epochs: 10,
                ..Default::default()
            },
            use_position: true,
            pos_dim: 8,
            seed: 0x57AC7,
        }
    }
}

impl StructuralConfig {
    /// A small configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        StructuralConfig {
            dim: 16,
            pos_dim: 4,
            contrastive: ContrastiveConfig {
                epochs: 3,
                ..Default::default()
            },
            seed,
            ..Default::default()
        }
    }
}

/// The structural side of the detector: the heterogeneous graph, the
/// (contrastively pretrained) GNN, cached node representations `h^K`, and
/// the position embeddings.
#[derive(Debug, Clone)]
pub struct StructuralModel {
    pub graph: taxo_graph::HeteroGraph,
    pub gnn: GnnStack,
    pub pos: PositionEmbeddings,
    /// Final node representations (`n × dim`), refreshed by
    /// [`StructuralModel::refresh`].
    pub h: Matrix,
    /// Initial node features (kept to allow refresh after GNN updates).
    x0: Matrix,
    use_position: bool,
    /// Losses recorded by contrastive pretraining (empty if disabled).
    pub contrastive_losses: Vec<f32>,
}

impl StructuralModel {
    /// Builds the graph from the existing taxonomy (plus click pairs
    /// unless ablated), initialises node features, optionally pretrains
    /// contrastively, and caches `h^K`.
    pub fn build(
        existing: &Taxonomy,
        vocab: &Vocabulary,
        pairs: &[CandidatePair],
        relational: Option<&RelationalModel>,
        cfg: &StructuralConfig,
    ) -> Self {
        let _g = taxo_obs::span!("train.structural_build");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut builder = HeteroGraphBuilder::new();
        for e in existing.edges() {
            builder.add_taxonomy_edge(e.parent, e.child);
        }
        for n in existing.nodes() {
            builder.add_node(n);
        }
        if cfg.use_click_graph {
            for p in pairs {
                builder.add_clicks(p.query, p.item, p.clicks);
            }
        }
        let graph = builder.build(cfg.weight_scheme);

        let n = graph.node_count();
        let x0 = match (cfg.init_cbert, relational) {
            (true, Some(rel)) => {
                let d = rel.dim();
                let mut x = Matrix::zeros(n, d);
                for u in 0..n {
                    let v = rel.encode_concept(vocab.name(graph.concept_of(u)));
                    x.row_mut(u).copy_from_slice(&v);
                }
                x
            }
            _ => Param::normal_init(n, cfg.dim, 0.5, &mut rng).value,
        };

        let mut gnn = GnnStack::new(
            cfg.gnn_kind,
            &dims_for(x0.cols(), cfg.dim, cfg.hops),
            &mut rng,
        );
        let contrastive_losses = if cfg.use_contrastive {
            pretrain_contrastive(&graph, &mut gnn, &x0, &cfg.contrastive)
        } else {
            Vec::new()
        };
        let (h, _) = gnn.forward(&graph, &x0);
        let pos = PositionEmbeddings::new(cfg.pos_dim, &mut rng);
        StructuralModel {
            graph,
            gnn,
            pos,
            h,
            x0,
            use_position: cfg.use_position,
            contrastive_losses,
        }
    }

    /// Recomputes the cached node representations (after any GNN update).
    pub fn refresh(&mut self) {
        let (h, _) = self.gnn.forward(&self.graph, &self.x0);
        self.h = h;
    }

    /// Node representation of a concept (zeros when the concept is not a
    /// graph node — e.g. a brand-new concept nobody clicked).
    pub fn node_vector(&self, c: ConceptId) -> Vec<f32> {
        match self.graph.node_of(c) {
            Some(u) => self.h.row(u).to_vec(),
            None => vec![0.0; self.h.cols()],
        }
    }

    /// The structural pair feature of Eq. 13:
    /// `s = [h_q ⊕ p_parent ⊕ h_i ⊕ p_child]` (position parts dropped
    /// under the ablation).
    pub fn pair_features(&self, query: ConceptId, item: ConceptId) -> Matrix {
        let hq = self.node_vector(query);
        let hi = self.node_vector(item);
        let mut out = Vec::with_capacity(self.feature_dim());
        out.extend_from_slice(&hq);
        if self.use_position {
            out.extend_from_slice(self.pos.parent.value.row(0));
        }
        out.extend_from_slice(&hi);
        if self.use_position {
            out.extend_from_slice(self.pos.child.value.row(0));
        }
        Matrix::row_vector(out)
    }

    /// Allocation-free [`StructuralModel::pair_features`]: writes the
    /// Eq. 13 layout `[h_q ⊕ p_parent ⊕ h_i ⊕ p_child]` into `out`, which
    /// must be zeroed and exactly [`StructuralModel::feature_dim`] long
    /// (unknown concepts keep their zero slice). Copies the same values in
    /// the same layout, so scores downstream are bitwise identical.
    pub fn pair_features_into(&self, query: ConceptId, item: ConceptId, out: &mut [f32]) {
        assert_eq!(out.len(), self.feature_dim());
        let d = self.h.cols();
        let p = if self.use_position { self.pos.dim() } else { 0 };
        if let Some(u) = self.graph.node_of(query) {
            out[..d].copy_from_slice(self.h.row(u));
        }
        if let Some(u) = self.graph.node_of(item) {
            out[d + p..2 * d + p].copy_from_slice(self.h.row(u));
        }
        if self.use_position {
            out[d..d + p].copy_from_slice(self.pos.parent.value.row(0));
            out[2 * d + p..].copy_from_slice(self.pos.child.value.row(0));
        }
    }

    /// Dimension of [`StructuralModel::pair_features`].
    pub fn feature_dim(&self) -> usize {
        2 * self.h.cols()
            + if self.use_position {
                2 * self.pos.dim()
            } else {
                0
            }
    }

    /// Accumulates the gradient of a pair feature into the position
    /// embeddings (the node representations are treated as fixed features
    /// learned by contrastive pretraining).
    pub fn backward_pair(&mut self, d_s: &Matrix) {
        if !self.use_position {
            return;
        }
        let d = self.h.cols();
        let p = self.pos.dim();
        for c in 0..p {
            self.pos.parent.grad[(0, c)] += d_s[(0, d + c)];
            self.pos.child.grad[(0, c)] += d_s[(0, 2 * d + p + c)];
        }
    }
}

fn dims_for(d_in: usize, d_out: usize, hops: usize) -> Vec<usize> {
    let mut dims = vec![d_in];
    for _ in 0..hops.max(1) {
        dims.push(d_out);
    }
    dims
}

impl Module for StructuralModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Only the position embeddings train with the classifier; the GNN
        // trains in its contrastive pretraining phase.
        self.pos.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct_graph;
    use taxo_synth::{ClickConfig, ClickLog, World, WorldConfig};

    fn setup(cfg: &StructuralConfig) -> (World, StructuralModel) {
        let world = World::generate(&WorldConfig::tiny(31));
        let log = ClickLog::generate(&world, &ClickConfig::tiny(31));
        let built = construct_graph(
            &world.existing,
            &world.vocab,
            &log.records,
            WeightScheme::IfIqf,
        );
        let model = StructuralModel::build(&world.existing, &world.vocab, &built.pairs, None, cfg);
        (world, model)
    }

    #[test]
    fn builds_with_expected_dims() {
        let cfg = StructuralConfig::tiny(1);
        let (world, model) = setup(&cfg);
        assert!(model.graph.node_count() >= world.existing.node_count());
        assert_eq!(model.h.cols(), cfg.dim);
        assert_eq!(model.feature_dim(), 2 * cfg.dim + 2 * cfg.pos_dim);
        assert!(!model.contrastive_losses.is_empty());
    }

    #[test]
    fn pair_features_layout_matches_eq13() {
        let cfg = StructuralConfig::tiny(2);
        let (world, model) = setup(&cfg);
        let q = world.roots[0];
        let i = world.truth.children(q)[0];
        let s = model.pair_features(q, i);
        assert_eq!(s.cols(), model.feature_dim());
        let d = cfg.dim;
        let p = cfg.pos_dim;
        // h_q slice matches node_vector(q).
        assert_eq!(&s.data()[..d], model.node_vector(q).as_slice());
        // p_parent slice matches the embedding.
        assert_eq!(&s.data()[d..d + p], model.pos.parent.value.row(0));
        // h_i slice.
        assert_eq!(&s.data()[d + p..2 * d + p], model.node_vector(i).as_slice());
    }

    #[test]
    fn unknown_concept_gets_zero_vector() {
        let cfg = StructuralConfig::tiny(3);
        let (world, model) = setup(&cfg);
        // A withheld new concept that nobody clicked may be absent.
        let absent = world
            .vocab
            .ids()
            .find(|&c| model.graph.node_of(c).is_none());
        if let Some(c) = absent {
            assert!(model.node_vector(c).iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn no_position_ablation_shrinks_features() {
        let cfg = StructuralConfig {
            use_position: false,
            ..StructuralConfig::tiny(4)
        };
        let (_, model) = setup(&cfg);
        assert_eq!(model.feature_dim(), 2 * 16);
    }

    #[test]
    fn no_click_graph_ablation_limits_nodes() {
        let with = setup(&StructuralConfig::tiny(5)).1;
        let without = setup(&StructuralConfig {
            use_click_graph: false,
            ..StructuralConfig::tiny(5)
        })
        .1;
        assert!(without.graph.node_count() <= with.graph.node_count());
        assert_eq!(without.graph.click_edges().count(), 0);
    }

    #[test]
    fn backward_pair_fills_position_grads() {
        let cfg = StructuralConfig::tiny(6);
        let (world, mut model) = setup(&cfg);
        let q = world.roots[0];
        let i = world.truth.children(q)[0];
        let s = model.pair_features(q, i);
        let d_s = Matrix::from_fn(1, s.cols(), |_, c| c as f32 * 0.01);
        model.backward_pair(&d_s);
        assert!(model.pos.parent.grad.norm() > 0.0);
        assert!(model.pos.child.grad.norm() > 0.0);
    }

    #[test]
    fn contrastive_ablation_records_no_losses() {
        let cfg = StructuralConfig {
            use_contrastive: false,
            ..StructuralConfig::tiny(7)
        };
        let (_, model) = setup(&cfg);
        assert!(model.contrastive_losses.is_empty());
    }
}
