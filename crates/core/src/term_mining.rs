//! Automatic extraction of *new concept candidates* from clicked item
//! strings — the extension the paper explicitly defers ("we first try to
//! attach these concepts to the existing taxonomy and leave automatically
//! extracting concepts from user click logs in the future",
//! Section IV-A4).
//!
//! The miner looks at item strings that the concept vocabulary cannot
//! explain (the #IOthers mass of Table I), extracts frequent contiguous
//! token n-grams, and keeps the maximal ones with enough support across
//! distinct queries. The output is a ranked list of candidate vocabulary
//! entries a curator (or the expansion pipeline itself) can adopt.

use std::collections::{HashMap, HashSet};
use taxo_core::{ConceptId, Vocabulary};
use taxo_synth::ClickRecord;
use taxo_text::{tokenize, ConceptMatcher};

/// Configuration for [`mine_terms`].
#[derive(Debug, Clone)]
pub struct TermMiningConfig {
    /// Minimum total click count of an n-gram.
    pub min_support: u64,
    /// Minimum number of *distinct queries* under which the n-gram was
    /// clicked (an analogue of the IQF intuition: a candidate concept
    /// should matter to more than one query context — but appearing under
    /// *every* query marks a decoration word, not a concept).
    pub min_queries: usize,
    /// Maximum fraction of all mined queries an n-gram may appear under
    /// before it is considered a decoration/stop token.
    pub max_query_fraction: f64,
    /// N-gram length bounds (tokens).
    pub min_tokens: usize,
    pub max_tokens: usize,
    /// Maximum number of candidates returned.
    pub top_k: usize,
}

impl Default for TermMiningConfig {
    fn default() -> Self {
        TermMiningConfig {
            min_support: 5,
            min_queries: 2,
            max_query_fraction: 0.3,
            min_tokens: 1,
            max_tokens: 4,
            top_k: 200,
        }
    }
}

/// One mined concept candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedTerm {
    pub text: String,
    /// Total clicks on items containing the n-gram.
    pub support: u64,
    /// Distinct query concepts that clicked it.
    pub query_count: usize,
    /// support × ln(1 + query_count): frequent *and* broadly wanted.
    pub score: f64,
}

/// Mines candidate new concepts from item strings not covered by the
/// existing vocabulary.
pub fn mine_terms(
    vocab: &Vocabulary,
    records: &[ClickRecord],
    cfg: &TermMiningConfig,
) -> Vec<MinedTerm> {
    let _g = taxo_obs::span!("mining.run");
    let matcher = ConceptMatcher::new(vocab);
    // (ngram -> (clicks, distinct queries)).
    let mut stats: HashMap<String, (u64, HashSet<ConceptId>)> = HashMap::new();
    let mut total_queries: HashSet<ConceptId> = HashSet::new();

    for r in records {
        // Only unexplained items feed the miner.
        if matcher.identify(&r.item_text).is_some() {
            continue;
        }
        total_queries.insert(r.query);
        let tokens = tokenize(&r.item_text);
        for start in 0..tokens.len() {
            for len in cfg.min_tokens..=cfg.max_tokens.min(tokens.len() - start) {
                let gram = tokens[start..start + len].join(" ");
                let entry = stats.entry(gram).or_default();
                entry.0 += r.count;
                entry.1.insert(r.query);
            }
        }
    }

    let query_cap =
        ((total_queries.len() as f64) * cfg.max_query_fraction).max(cfg.min_queries as f64);
    let mut candidates: Vec<MinedTerm> = stats
        .iter()
        .filter(|(_, (support, queries))| {
            *support >= cfg.min_support
                && queries.len() >= cfg.min_queries
                && (queries.len() as f64) <= query_cap
        })
        .map(|(gram, (support, queries))| MinedTerm {
            text: gram.clone(),
            support: *support,
            query_count: queries.len(),
            score: *support as f64 * (1.0 + queries.len() as f64).ln(),
        })
        .collect();

    // Keep only *maximal* candidates: drop an n-gram contained in another
    // surviving n-gram carrying at least 90% of its support (sub-grams of
    // a real concept name carry nearly the same counts, whereas a
    // decorated variant like "fresh X" holds only a slice of X's total).
    let kept: Vec<MinedTerm> = {
        let mut sorted = candidates.clone();
        sorted.sort_by_key(|c| std::cmp::Reverse(c.text.len()));
        let mut out: Vec<MinedTerm> = Vec::new();
        for c in sorted {
            let shadowed = out.iter().any(|longer| {
                longer
                    .text
                    .split(' ')
                    .collect::<Vec<_>>()
                    .windows(c.text.split(' ').count())
                    .any(|w| w.join(" ") == c.text)
                    && longer.support * 10 >= c.support * 9
            });
            if !shadowed {
                out.push(c);
            }
        }
        out
    };
    candidates = kept;
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.text.cmp(&b.text)));
    candidates.truncate(cfg.top_k);
    taxo_obs::counter!("mining.ngrams_considered").add(stats.len() as u64);
    taxo_obs::counter!("mining.terms_mined").add(candidates.len() as u64);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(query: u32, item: &str, count: u64) -> ClickRecord {
        ClickRecord {
            query: ConceptId(query),
            item_text: item.to_owned(),
            count,
        }
    }

    fn base_vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.intern("breado");
        v
    }

    #[test]
    fn recovers_an_unknown_concept() {
        let vocab = base_vocab();
        // "matcha latte" is a real concept missing from the vocabulary;
        // it appears decorated under two different queries.
        let records = vec![
            record(1, "iced matcha latte", 4),
            record(1, "matcha latte grande", 3),
            record(2, "matcha latte", 5),
            record(2, "random fluff", 1),
        ];
        let mined = mine_terms(&vocab, &records, &TermMiningConfig::default());
        assert!(
            mined.iter().any(|m| m.text == "matcha latte"),
            "mined: {mined:?}"
        );
        let hit = mined.iter().find(|m| m.text == "matcha latte").unwrap();
        assert_eq!(hit.support, 12);
        assert_eq!(hit.query_count, 2);
    }

    #[test]
    fn known_concepts_do_not_feed_the_miner() {
        let vocab = base_vocab();
        // Items containing "breado" are explained by the vocabulary.
        let records = vec![record(1, "fresh breado", 50), record(2, "breado deal", 50)];
        let mined = mine_terms(&vocab, &records, &TermMiningConfig::default());
        assert!(mined.is_empty(), "{mined:?}");
    }

    #[test]
    fn subgrams_are_absorbed_by_maximal_terms() {
        let vocab = base_vocab();
        let records = vec![record(1, "matcha latte", 6), record(2, "matcha latte", 6)];
        let mined = mine_terms(&vocab, &records, &TermMiningConfig::default());
        // "matcha" and "latte" alone are shadowed by "matcha latte".
        assert!(mined.iter().any(|m| m.text == "matcha latte"));
        assert!(!mined.iter().any(|m| m.text == "matcha"));
        assert!(!mined.iter().any(|m| m.text == "latte"));
    }

    #[test]
    fn ubiquitous_tokens_are_rejected_as_decorations() {
        let vocab = base_vocab();
        // "promo" occurs under every query → decoration, not a concept.
        let mut records = Vec::new();
        for q in 0..10u32 {
            records.push(record(q, &format!("promo thing{q}"), 10));
        }
        records.push(record(0, "matcha latte", 10));
        records.push(record(1, "matcha latte", 10));
        let cfg = TermMiningConfig {
            max_query_fraction: 0.4,
            ..Default::default()
        };
        let mined = mine_terms(&vocab, &records, &cfg);
        assert!(!mined.iter().any(|m| m.text == "promo"), "{mined:?}");
        assert!(mined.iter().any(|m| m.text == "matcha latte"));
    }

    #[test]
    fn support_threshold_filters_noise() {
        let vocab = base_vocab();
        let records = vec![record(1, "rare thing", 1), record(2, "rare thing", 1)];
        let mined = mine_terms(&vocab, &records, &TermMiningConfig::default());
        assert!(mined.is_empty());
    }

    #[test]
    fn ranked_by_score() {
        let vocab = base_vocab();
        let records = vec![
            record(1, "alpha snack", 50),
            record(2, "alpha snack", 50),
            record(1, "beta snack", 5),
            record(2, "beta snack", 5),
        ];
        let mined = mine_terms(&vocab, &records, &TermMiningConfig::default());
        assert!(!mined.is_empty());
        assert!(mined[0].score >= mined.last().unwrap().score);
        assert!(mined[0].text.contains("alpha"));
    }
}
