use crate::{LabeledPair, RelationalModel, StructuralModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use taxo_core::{ConceptId, Vocabulary};
use taxo_nn::{losses, Adam, Matrix, Mlp};
use taxo_obs::counter;

/// Configuration of the edge-classification head and its training loop
/// (Eq. 15–16).
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    pub mlp_hidden: usize,
    pub epochs: usize,
    pub batch: usize,
    /// Learning rate for the MLP and position embeddings.
    pub lr: f32,
    /// Learning rate for encoder fine-tuning (0 disables even when
    /// `finetune_encoder` is set).
    pub encoder_lr: f32,
    /// Fine-tune C-BERT during classifier training (the "- Finetune"
    /// ablation freezes it).
    pub finetune_encoder: bool,
    /// Decoupled weight decay applied by every optimiser.
    pub weight_decay: f32,
    /// Probability of zeroing each *structural* feature coordinate during
    /// training (inverted dropout). The relational slice is left intact:
    /// it is already regularised by the shared encoder, while the
    /// structural slice is a fixed feature vector that otherwise lets the
    /// MLP overfit quickly.
    pub input_dropout: f32,
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            mlp_hidden: 96,
            epochs: 60,
            batch: 16,
            lr: 3e-3,
            encoder_lr: 5e-4,
            finetune_encoder: true,
            weight_decay: 1e-4,
            input_dropout: 0.1,
            seed: 0xDE7EC,
        }
    }
}

impl DetectorConfig {
    /// A quick configuration for tests: small batches and many epochs so
    /// that even a ~20-pair toy dataset yields enough optimiser steps.
    /// Epochs match the default schedule (60): at 30 the quick config
    /// demonstrably underfits (train accuracy stalls below 0.80 on the
    /// pipeline test world and held-out accuracy lands under 0.55).
    pub fn tiny(seed: u64) -> Self {
        DetectorConfig {
            mlp_hidden: 32,
            epochs: 60,
            batch: 8,
            lr: 5e-3,
            encoder_lr: 2e-3,
            input_dropout: 0.05,
            seed,
            ..Default::default()
        }
    }
}

thread_local! {
    /// Per-thread inference arena backing [`HypoDetector::score`]: on any
    /// long-lived thread (server scorer, test main thread) every score
    /// after the first reuses warm buffers with zero heap allocations.
    static SCORER: std::cell::RefCell<crate::BatchScorer> =
        std::cell::RefCell::new(crate::BatchScorer::new());
}

/// Runs `f` with this thread's warm scoring arena — shared by every
/// backend tier so singles through [`HypoDetector::score`] and
/// [`crate::QuantizedDetector::score`] reuse the same buffers.
pub(crate) fn with_thread_scorer<R>(f: impl FnOnce(&mut crate::BatchScorer) -> R) -> R {
    SCORER.with(|s| f(&mut s.borrow_mut()))
}

/// The full hyponymy detection module (Section III-B): the relational
/// representation `r`, the structural representation `s`, their
/// concatenation `e = [r ⊕ s]` (Eq. 14), and the MLP classifier (Eq. 15).
/// Either representation can be absent for the Table VI ablations.
#[derive(Debug, Clone)]
pub struct HypoDetector {
    pub relational: Option<RelationalModel>,
    pub structural: Option<StructuralModel>,
    pub mlp: Mlp,
    finetune_encoder: bool,
}

impl HypoDetector {
    /// Assembles a detector; at least one representation must be present.
    pub fn new(
        relational: Option<RelationalModel>,
        structural: Option<StructuralModel>,
        cfg: &DetectorConfig,
    ) -> Self {
        let dim = relational.as_ref().map_or(0, |r| r.dim())
            + structural.as_ref().map_or(0, |s| s.feature_dim());
        assert!(dim > 0, "detector needs at least one representation");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        HypoDetector {
            relational,
            structural,
            mlp: Mlp::new(dim, cfg.mlp_hidden, &mut rng),
            finetune_encoder: cfg.finetune_encoder,
        }
    }

    /// Edge-representation dimension (`|e|` in Eq. 14).
    pub fn edge_dim(&self) -> usize {
        self.relational.as_ref().map_or(0, |r| r.dim())
            + self.structural.as_ref().map_or(0, |s| s.feature_dim())
    }

    fn edge_features(
        &self,
        vocab: &Vocabulary,
        parent: ConceptId,
        child: ConceptId,
    ) -> (Matrix, Option<crate::relational::PairCtx>) {
        let mut parts: Vec<Matrix> = Vec::with_capacity(2);
        let mut rel_ctx = None;
        if let Some(rel) = &self.relational {
            let (r, ctx) = rel.forward_pair(vocab.name(parent), vocab.name(child));
            parts.push(r);
            rel_ctx = Some(ctx);
        }
        if let Some(st) = &self.structural {
            parts.push(st.pair_features(parent, child));
        }
        let refs: Vec<&Matrix> = parts.iter().collect();
        (Matrix::hstack(&refs), rel_ctx)
    }

    /// Probability that `<parent, child>` is a hyponymy relation.
    ///
    /// Runs the allocation-free inference fast path (a thread-resident
    /// [`crate::BatchScorer`] arena): no backward context is built and no
    /// intermediate matrices are allocated after the thread's first call.
    /// Bitwise identical to the gradient-capable
    /// [`HypoDetector::edge_features`] + MLP path used in training.
    pub fn score(&self, vocab: &Vocabulary, parent: ConceptId, child: ConceptId) -> f32 {
        SCORER.with(|s| s.borrow_mut().score_one(self, vocab, parent, child))
    }

    /// Scores many pairs through the batched fast path (one encoder
    /// forward and one MLP GEMM per template-length bucket), fanning the
    /// work across `par_map` workers in chunks. Workers reuse warm arenas
    /// from `pool`; results come back in input order and are bitwise
    /// identical to calling [`HypoDetector::score`] per pair at any
    /// thread count.
    pub fn score_batch(
        &self,
        vocab: &Vocabulary,
        pairs: &[(ConceptId, ConceptId)],
        pool: &crate::ScratchPool,
    ) -> Vec<f32> {
        // Large enough to amortise bucketing, small enough to spread over
        // workers.
        const CHUNK: usize = 64;
        if pairs.len() <= CHUNK {
            let mut scorer = pool.take();
            let mut out = Vec::with_capacity(pairs.len());
            scorer.score_into(self, vocab, pairs, &mut out);
            pool.put(scorer);
            return out;
        }
        let n_chunks = pairs.len().div_ceil(CHUNK);
        let chunks = taxo_nn::parallel::par_map(n_chunks, |ci| {
            let chunk = &pairs[ci * CHUNK..((ci + 1) * CHUNK).min(pairs.len())];
            let mut scorer = pool.take();
            let mut out = Vec::with_capacity(chunk.len());
            scorer.score_into(self, vocab, chunk, &mut out);
            pool.put(scorer);
            out
        });
        chunks.concat()
    }

    /// Binary prediction at threshold 0.5.
    pub fn predict(&self, vocab: &Vocabulary, parent: ConceptId, child: ConceptId) -> bool {
        self.score(vocab, parent, child) > 0.5
    }

    /// Trains the classifier (and optionally fine-tunes the encoder and
    /// position embeddings) with BCE over the training pairs (Eq. 16).
    /// Returns the mean loss of each epoch.
    pub fn train(
        &mut self,
        vocab: &Vocabulary,
        train: &[LabeledPair],
        cfg: &DetectorConfig,
    ) -> Vec<f32> {
        self.train_with_val(vocab, train, &[], cfg)
    }

    /// Like [`HypoDetector::train`], but tracks accuracy on `val` after
    /// every epoch and restores the best-validation snapshot at the end
    /// (the paper holds out a 20% validation split for exactly this).
    pub fn train_with_val(
        &mut self,
        vocab: &Vocabulary,
        train: &[LabeledPair],
        val: &[LabeledPair],
        cfg: &DetectorConfig,
    ) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut adam_mlp = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        let mut adam_pos = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        let mut adam_enc = Adam::new(cfg.encoder_lr).with_weight_decay(cfg.weight_decay);
        let mut best: Option<(f64, HypoDetector)> = None;
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        let rel_dim = self.relational.as_ref().map_or(0, |r| r.dim());

        for _ in 0..cfg.epochs {
            counter!("train.detector.epochs").inc();
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch) {
                // Data-parallel forward: `edge_features` is pure (`&self`,
                // no rng), so batch elements run concurrently and come
                // back in index order — thread-count invariant.
                let this: &HypoDetector = &*self;
                let mut rows = Vec::with_capacity(chunk.len());
                let mut ctxs = Vec::with_capacity(chunk.len());
                let mut labels = Vec::with_capacity(chunk.len());
                for (e, ctx, label) in taxo_nn::parallel::par_map(chunk.len(), |j| {
                    let p = &train[chunk[j]];
                    let (e, ctx) = this.edge_features(vocab, p.parent, p.child);
                    (e, ctx, usize::from(p.label))
                }) {
                    rows.push(e);
                    ctxs.push(ctx);
                    labels.push(label);
                }
                let refs: Vec<&Matrix> = rows.iter().collect();
                let mut x = Matrix::vstack(&refs);
                // Inverted dropout on the structural slice only (see the
                // `input_dropout` doc). When there is no relational part,
                // the whole feature vector is structural.
                let keep = 1.0 - cfg.input_dropout;
                let mask = if cfg.input_dropout > 0.0 && rel_dim < x.cols() {
                    let m = Matrix::from_fn(x.rows(), x.cols(), |_, c| {
                        if c >= rel_dim && rng.random_range(0.0..1.0) < f64::from(cfg.input_dropout)
                        {
                            0.0
                        } else if c >= rel_dim {
                            1.0 / keep
                        } else {
                            1.0
                        }
                    });
                    x = x.hadamard(&m);
                    Some(m)
                } else {
                    None
                };
                let (logits, mlp_ctx) = self.mlp.forward(&x);
                let (loss, dlogits) = losses::softmax_xent(&logits, &labels);
                let mut dx = self.mlp.backward(&mlp_ctx, &dlogits);
                if let Some(m) = &mask {
                    dx = dx.hadamard(m);
                }
                total += loss as f64;
                batches += 1;
                counter!("train.detector.batches").inc();

                // Route gradients into the representation modules.
                for (row, ctx) in ctxs.iter().enumerate() {
                    let d_row = dx.slice_rows(row, 1);
                    if let (Some(rel), Some(pair_ctx), true) = (
                        self.relational.as_mut(),
                        ctx.as_ref(),
                        self.finetune_encoder,
                    ) {
                        let d_r = Matrix::from_fn(1, rel_dim, |_, c| d_row[(0, c)]);
                        rel.backward_pair(pair_ctx, &d_r);
                    }
                    if let Some(st) = self.structural.as_mut() {
                        let d_s =
                            Matrix::from_fn(1, st.feature_dim(), |_, c| d_row[(0, rel_dim + c)]);
                        st.backward_pair(&d_s);
                    }
                }
                adam_mlp.step(&mut self.mlp);
                if let Some(st) = self.structural.as_mut() {
                    adam_pos.step(st);
                }
                if self.finetune_encoder {
                    if let Some(rel) = self.relational.as_mut() {
                        adam_enc.step(rel);
                    }
                }
            }
            epoch_losses.push((total / batches.max(1) as f64) as f32);
            if !val.is_empty() {
                let acc = self.accuracy(vocab, val);
                // `>=`, not `>`: validation sets are small enough that many
                // epochs tie on accuracy, and among tied snapshots the one
                // with more optimiser steps generalises better (it has the
                // same validation score at a lower training loss).
                if best.as_ref().is_none_or(|(b, _)| acc >= *b) {
                    best = Some((acc, self.clone()));
                }
            }
        }
        if let Some((_, snapshot)) = best {
            *self = snapshot;
        }
        epoch_losses
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, vocab: &Vocabulary, pairs: &[LabeledPair]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        // Each prediction is independent; evaluate them in parallel and
        // count matches from the index-ordered results.
        let correct = taxo_nn::parallel::par_map(pairs.len(), |i| {
            let p = &pairs[i];
            self.predict(vocab, p.parent, p.child) == p.label
        })
        .into_iter()
        .filter(|&ok| ok)
        .count();
        correct as f64 / pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        construct_graph, generate_dataset, DatasetConfig, RelationalConfig, Strategy,
        StructuralConfig,
    };
    use taxo_graph::WeightScheme;
    use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};

    struct Fixture {
        world: World,
        dataset: crate::Dataset,
        detector: HypoDetector,
    }

    fn fixture(use_relational: bool, use_structural: bool) -> Fixture {
        // Large enough that test-set accuracy is meaningful (~60 test
        // pairs) while staying fast in debug builds.
        let world = World::generate(&WorldConfig {
            target_nodes: 220,
            max_depth: 6,
            ..WorldConfig::tiny(51)
        });
        let log = ClickLog::generate(
            &world,
            &ClickConfig {
                n_events: 12_000,
                ..ClickConfig::tiny(51)
            },
        );
        let ugc = UgcCorpus::generate(
            &world,
            &UgcConfig {
                n_sentences: 2_500,
                ..UgcConfig::tiny(51)
            },
        );
        let built = construct_graph(
            &world.existing,
            &world.vocab,
            &log.records,
            WeightScheme::IfIqf,
        );
        let dataset = generate_dataset(
            &world.existing,
            &world.vocab,
            &built.pairs,
            &DatasetConfig {
                strategy: Strategy::Adaptive,
                ..Default::default()
            },
        );
        let relational = use_relational.then(|| {
            RelationalModel::pretrain(&world.vocab, &ugc.sentences, &RelationalConfig::tiny(51)).0
        });
        let structural = use_structural.then(|| {
            StructuralModel::build(
                &world.existing,
                &world.vocab,
                &built.pairs,
                relational.as_ref(),
                &StructuralConfig::tiny(51),
            )
        });
        let detector = HypoDetector::new(relational, structural, &DetectorConfig::tiny(51));
        Fixture {
            world,
            dataset,
            detector,
        }
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let mut f = fixture(true, true);
        let losses = f
            .detector
            .train(&f.world.vocab, &f.dataset.train, &DetectorConfig::tiny(54));
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
        let acc = f.detector.accuracy(&f.world.vocab, &f.dataset.test);
        assert!(acc > 0.6, "test accuracy {acc}");
    }

    #[test]
    fn relational_only_detector_works() {
        let mut f = fixture(true, false);
        f.detector
            .train(&f.world.vocab, &f.dataset.train, &DetectorConfig::tiny(52));
        let acc = f.detector.accuracy(&f.world.vocab, &f.dataset.test);
        assert!(acc > 0.55, "relational-only accuracy {acc}");
    }

    #[test]
    fn structural_only_detector_works() {
        let mut f = fixture(false, true);
        f.detector
            .train(&f.world.vocab, &f.dataset.train, &DetectorConfig::tiny(53));
        // Structural-only generalisation is weak at toy scale (and weak
        // in the paper's Table VI as well); assert that the features are
        // at least fittable well beyond chance.
        let acc = f.detector.accuracy(&f.world.vocab, &f.dataset.train);
        assert!(acc > 0.6, "structural-only train accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "at least one representation")]
    fn empty_detector_rejected() {
        let _ = HypoDetector::new(None, None, &DetectorConfig::tiny(0));
    }

    /// The fast path behind `score`/`score_batch` must reproduce the
    /// gradient-capable `edge_features` + MLP path bit for bit — the
    /// contract that lets serving cache and batch scores while staying
    /// exactly equal to the offline twin.
    #[test]
    fn fast_path_scores_are_bitwise_identical_to_training_path() {
        let f = fixture(true, true);
        let vocab = &f.world.vocab;
        let pairs: Vec<_> = f
            .dataset
            .train
            .iter()
            .take(40)
            .map(|p| (p.parent, p.child))
            .collect();

        let reference: Vec<f32> = pairs
            .iter()
            .map(|&(p, c)| {
                let (e, _) = f.detector.edge_features(vocab, p, c);
                f.detector.mlp.predict_positive(&e)
            })
            .collect();

        let scalar: Vec<f32> = pairs
            .iter()
            .map(|&(p, c)| f.detector.score(vocab, p, c))
            .collect();
        let pool = crate::ScratchPool::new();
        let batched = f.detector.score_batch(vocab, &pairs, &pool);
        // Second batched run through the now-warm pool arena: buffer reuse
        // must not change a single bit either.
        let warm = f.detector.score_batch(vocab, &pairs, &pool);

        for (i, r) in reference.iter().enumerate() {
            assert_eq!(r.to_bits(), scalar[i].to_bits(), "scalar pair {i}");
            assert_eq!(r.to_bits(), batched[i].to_bits(), "batched pair {i}");
            assert_eq!(r.to_bits(), warm[i].to_bits(), "warm pair {i}");
        }
    }

    /// Ablated detectors (single representation) go through dedicated
    /// fast-path branches; both must match the training path bit for bit.
    #[test]
    fn fast_path_matches_training_path_under_ablations() {
        for (use_rel, use_st) in [(true, false), (false, true)] {
            let f = fixture(use_rel, use_st);
            let vocab = &f.world.vocab;
            let pairs: Vec<_> = f
                .dataset
                .train
                .iter()
                .take(20)
                .map(|p| (p.parent, p.child))
                .collect();
            let pool = crate::ScratchPool::new();
            let batched = f.detector.score_batch(vocab, &pairs, &pool);
            for (i, &(p, c)) in pairs.iter().enumerate() {
                let (e, _) = f.detector.edge_features(vocab, p, c);
                let reference = f.detector.mlp.predict_positive(&e);
                assert_eq!(
                    reference.to_bits(),
                    batched[i].to_bits(),
                    "rel={use_rel} st={use_st} pair {i}"
                );
            }
        }
    }

    #[test]
    fn score_is_probability_and_direction_sensitive() {
        let mut f = fixture(true, true);
        f.detector.train_with_val(
            &f.world.vocab,
            &f.dataset.train,
            &f.dataset.val,
            &DetectorConfig::tiny(54),
        );
        // Over the *training* positives, the learned direction must
        // outscore the reverse in a clear majority of cases (held-out
        // edges are too noisy at this toy scale for a direction check).
        let mut forward_wins = 0usize;
        let mut total = 0usize;
        for p in &f.dataset.train {
            if !p.label {
                continue;
            }
            let fwd = f.detector.score(&f.world.vocab, p.parent, p.child);
            let bwd = f.detector.score(&f.world.vocab, p.child, p.parent);
            assert!((0.0..=1.0).contains(&fwd));
            assert!((0.0..=1.0).contains(&bwd));
            total += 1;
            if fwd > bwd {
                forward_wins += 1;
            }
        }
        assert!(
            forward_wins * 5 > total * 3,
            "forward outscored reverse only {forward_wins}/{total} times"
        );
    }
}
