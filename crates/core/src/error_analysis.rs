//! Post-hoc error analysis of a trained detector — the tooling behind the
//! paper's case-study observations (Section IV-D: strong on headword
//! positives, residual errors on non-headword negatives and over-coarse
//! attachments).

use crate::{HypoDetector, LabeledPair, PairKind};
use taxo_core::Vocabulary;

/// Accuracy and counts for one pair kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KindBreakdown {
    pub total: usize,
    pub correct: usize,
}

impl KindBreakdown {
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Full per-kind error report plus the lowest-margin mistakes.
#[derive(Debug, Clone)]
pub struct ErrorReport {
    pub positive_head: KindBreakdown,
    pub positive_other: KindBreakdown,
    pub negative_shuffle: KindBreakdown,
    pub negative_replace: KindBreakdown,
    /// Misclassified pairs ordered by confidence (most confident mistakes
    /// first) — the cases worth a curator's attention.
    pub worst_mistakes: Vec<(LabeledPair, f32)>,
}

impl ErrorReport {
    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.positive_head.total
            + self.positive_other.total
            + self.negative_shuffle.total
            + self.negative_replace.total;
        let correct = self.positive_head.correct
            + self.positive_other.correct
            + self.negative_shuffle.correct
            + self.negative_replace.correct;
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Renders a compact text summary.
    pub fn render(&self, vocab: &Vocabulary, max_mistakes: usize) -> String {
        let mut out = String::new();
        let line = |name: &str, b: &KindBreakdown| {
            format!(
                "  {name:<18} {:>4}/{:<4} ({:.1}%)\n",
                b.correct,
                b.total,
                100.0 * b.accuracy()
            )
        };
        out.push_str("error analysis by pair kind:\n");
        out.push_str(&line("positive/headword", &self.positive_head));
        out.push_str(&line("positive/others", &self.positive_other));
        out.push_str(&line("negative/shuffle", &self.negative_shuffle));
        out.push_str(&line("negative/replace", &self.negative_replace));
        if !self.worst_mistakes.is_empty() {
            out.push_str("most confident mistakes:\n");
            for (p, score) in self.worst_mistakes.iter().take(max_mistakes) {
                out.push_str(&format!(
                    "  {} -> {} (label {}, score {score:.2})\n",
                    vocab.name(p.parent),
                    vocab.name(p.child),
                    p.label
                ));
            }
        }
        out
    }
}

/// Scores every pair and aggregates correctness per [`PairKind`].
pub fn analyze_errors(
    detector: &HypoDetector,
    vocab: &Vocabulary,
    pairs: &[LabeledPair],
) -> ErrorReport {
    let mut report = ErrorReport {
        positive_head: KindBreakdown::default(),
        positive_other: KindBreakdown::default(),
        negative_shuffle: KindBreakdown::default(),
        negative_replace: KindBreakdown::default(),
        worst_mistakes: Vec::new(),
    };
    for p in pairs {
        let score = detector.score(vocab, p.parent, p.child);
        let predicted = score > 0.5;
        let correct = predicted == p.label;
        let slot = match p.kind {
            PairKind::PositiveHead => &mut report.positive_head,
            PairKind::PositiveOther => &mut report.positive_other,
            PairKind::NegativeShuffle => &mut report.negative_shuffle,
            PairKind::NegativeReplace => &mut report.negative_replace,
        };
        slot.total += 1;
        if correct {
            slot.correct += 1;
        } else {
            // Confidence of the wrong decision.
            let confidence = if predicted { score } else { 1.0 - score };
            report.worst_mistakes.push((*p, confidence));
        }
    }
    report.worst_mistakes.sort_by(|a, b| b.1.total_cmp(&a.1));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DetectorConfig, RelationalConfig, RelationalModel};
    use taxo_core::ConceptId;
    use taxo_synth::{UgcConfig, UgcCorpus, World, WorldConfig};

    fn pair(p: u32, c: u32, label: bool, kind: PairKind) -> LabeledPair {
        LabeledPair {
            parent: ConceptId(p),
            child: ConceptId(c),
            label,
            kind,
        }
    }

    #[test]
    fn breakdown_counts_and_mistake_ordering() {
        // An untrained detector on a tiny world: we only check the
        // bookkeeping, not the quality.
        let world = World::generate(&WorldConfig::tiny(303));
        let ugc = UgcCorpus::generate(&world, &UgcConfig::tiny(303));
        let rel =
            RelationalModel::vanilla(&world.vocab, &ugc.sentences, &RelationalConfig::tiny(303));
        let detector = HypoDetector::new(Some(rel), None, &DetectorConfig::tiny(303));
        let nodes: Vec<ConceptId> = world.truth.nodes().collect();
        let pairs = vec![
            pair(nodes[0].0, nodes[1].0, true, PairKind::PositiveHead),
            pair(nodes[1].0, nodes[0].0, false, PairKind::NegativeShuffle),
            pair(nodes[0].0, nodes[2].0, true, PairKind::PositiveOther),
            pair(nodes[0].0, nodes[3].0, false, PairKind::NegativeReplace),
        ];
        let report = analyze_errors(&detector, &world.vocab, &pairs);
        let total = report.positive_head.total
            + report.positive_other.total
            + report.negative_shuffle.total
            + report.negative_replace.total;
        assert_eq!(total, 4);
        assert_eq!(report.positive_head.total, 1);
        // accuracy() is consistent with the slots.
        let correct_sum = report.positive_head.correct
            + report.positive_other.correct
            + report.negative_shuffle.correct
            + report.negative_replace.correct;
        assert!((report.accuracy() - correct_sum as f64 / 4.0).abs() < 1e-9);
        // Mistakes are sorted by descending confidence.
        for w in report.worst_mistakes.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Render mentions every category.
        let text = report.render(&world.vocab, 3);
        assert!(text.contains("positive/headword"));
        assert!(text.contains("negative/replace"));
    }

    #[test]
    fn empty_input_is_safe() {
        let world = World::generate(&WorldConfig::tiny(304));
        let ugc = UgcCorpus::generate(&world, &UgcConfig::tiny(304));
        let rel =
            RelationalModel::vanilla(&world.vocab, &ugc.sentences, &RelationalConfig::tiny(304));
        let detector = HypoDetector::new(Some(rel), None, &DetectorConfig::tiny(304));
        let report = analyze_errors(&detector, &world.vocab, &[]);
        assert_eq!(report.accuracy(), 0.0);
        assert!(report.worst_mistakes.is_empty());
    }
}
