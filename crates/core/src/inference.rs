use crate::{candidates_by_query, CandidatePair, HypoDetector};
use std::collections::{HashMap, HashSet, VecDeque};
use taxo_core::{ConceptId, Edge, LevelOrder, TaxoError, Taxonomy, Vocabulary};
use taxo_obs::{counter, histogram, span};

/// Configuration of top-down expansion (Section III-C3, Fig. 2).
#[derive(Debug, Clone)]
pub struct ExpansionConfig {
    /// Classifier probability above which an edge is attached.
    pub threshold: f32,
    /// Attach only concepts *outside* the existing taxonomy, as in
    /// Problem 1 ("attach the appropriate concept c ∈ C to the existing
    /// taxonomy"). Disabling this also lets the expander add new edges
    /// between existing concepts, at a precision cost: clicked pairs of
    /// two existing concepts are dominated by intention drift.
    pub only_new_concepts: bool,
    /// Cap on candidates scored per query node, keeping only the
    /// most-clicked items (the head of the click distribution carries
    /// the signal; Section IV-A4).
    pub max_candidates_per_query: usize,
}

impl ExpansionConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> ExpansionConfigBuilder {
        ExpansionConfigBuilder {
            cfg: ExpansionConfig::default(),
        }
    }

    /// Validates the configuration (the check behind
    /// [`ExpansionConfigBuilder::build`]).
    pub fn validate(&self) -> Result<(), TaxoError> {
        if !(self.threshold.is_finite() && (0.0..=1.0).contains(&self.threshold)) {
            return Err(TaxoError::invalid_config(
                "expansion.threshold",
                "must lie in [0, 1]",
            ));
        }
        if self.max_candidates_per_query == 0 {
            return Err(TaxoError::invalid_config(
                "expansion.max_candidates_per_query",
                "must be at least 1",
            ));
        }
        Ok(())
    }
}

/// Validating builder for [`ExpansionConfig`]; construct via
/// [`ExpansionConfig::builder`].
///
/// ```
/// use taxo_expand::ExpansionConfig;
/// let cfg = ExpansionConfig::builder().threshold(0.6).build().unwrap();
/// assert_eq!(cfg.threshold, 0.6);
/// assert!(ExpansionConfig::builder().threshold(1.5).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ExpansionConfigBuilder {
    cfg: ExpansionConfig,
}

impl ExpansionConfigBuilder {
    pub fn threshold(mut self, threshold: f32) -> Self {
        self.cfg.threshold = threshold;
        self
    }

    pub fn only_new_concepts(mut self, on: bool) -> Self {
        self.cfg.only_new_concepts = on;
        self
    }

    pub fn max_candidates_per_query(mut self, cap: usize) -> Self {
        self.cfg.max_candidates_per_query = cap;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ExpansionConfig, TaxoError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        // Deployment-oriented defaults: the candidate stream is ~90%
        // noise (Table IV), so expansion only scores the head of each
        // query's click distribution (where the paper observes the true
        // hyponyms live) and attaches at high confidence. Lower the
        // threshold / raise the cap to trade precision for volume.
        ExpansionConfig {
            threshold: 0.8,
            only_new_concepts: true,
            max_candidates_per_query: 8,
        }
    }
}

/// Result of one expansion run.
#[derive(Debug, Clone)]
pub struct ExpansionResult {
    /// The enriched taxonomy `T*`.
    pub expanded: Taxonomy,
    /// New hyponymy edges attached (before pruning).
    pub added: Vec<Edge>,
    /// Redundant edges removed by transitive pruning.
    pub pruned: Vec<Edge>,
}

impl ExpansionResult {
    /// Edges that survived pruning.
    pub fn surviving_edges(&self) -> Vec<Edge> {
        let pruned: HashSet<Edge> = self.pruned.iter().copied().collect();
        self.added
            .iter()
            .copied()
            .filter(|e| !pruned.contains(e))
            .collect()
    }
}

/// Expands `existing` with the trained detector using the paper's
/// top-down strategy: traverse in level-order, classify each query node's
/// clicked candidates, attach positives, let newly attached nodes join
/// the frontier for the next layer, and finally prune transitively
/// redundant edges.
pub fn expand_taxonomy(
    detector: &HypoDetector,
    vocab: &Vocabulary,
    existing: &Taxonomy,
    pairs: &[CandidatePair],
    cfg: &ExpansionConfig,
) -> ExpansionResult {
    let _run = span!("expand.run");
    let by_query: HashMap<ConceptId, Vec<CandidatePair>> = candidates_by_query(pairs);
    let mut expanded = existing.clone();
    let mut added = Vec::new();

    // Seed the frontier with the existing taxonomy in level order; newly
    // attached nodes are appended and processed afterwards (Fig. 2).
    let mut queue: VecDeque<ConceptId> = LevelOrder::new(existing).iter().collect();
    let mut visited: HashSet<ConceptId> = queue.iter().copied().collect();

    while let Some(query) = queue.pop_front() {
        counter!("expand.queries_visited").inc();
        let Some(candidates) = by_query.get(&query) else {
            continue;
        };
        // Split scoring from attachment: the state-independent filters
        // run first, the surviving candidates are scored in parallel
        // (`score` is pure), and the attachment pass below re-checks the
        // taxonomy-state conditions sequentially in candidate order — so
        // the expansion is identical at any thread count.
        let eligible: Vec<ConceptId> = candidates
            .iter()
            .take(cfg.max_candidates_per_query)
            .map(|c| c.item)
            .filter(|&item| {
                item != query && !(cfg.only_new_concepts && existing.contains_node(item))
            })
            .collect();
        counter!("expand.candidates_scored").add(eligible.len() as u64);
        histogram!("expand.candidates_per_query").observe(eligible.len() as u64);
        let scores = taxo_nn::parallel::par_map(eligible.len(), |i| {
            detector.score(vocab, query, eligible[i])
        });
        for (&item, &score) in eligible.iter().zip(&scores) {
            if expanded.contains_edge(query, item) || expanded.is_ancestor(item, query) {
                continue;
            }
            if score > cfg.threshold && expanded.add_edge(query, item).is_ok() {
                counter!("expand.attached").inc();
                added.push(Edge::new(query, item));
                if visited.insert(item) {
                    queue.push_back(item);
                }
            }
        }
    }

    // Considering the transitive property of taxonomies, prune redundant
    // edges inferable from a path — but never remove an edge of the
    // original taxonomy.
    let original: HashSet<Edge> = existing.edges().collect();
    let mut pruned = Vec::new();
    for e in expanded.transitive_reduction() {
        if original.contains(&e) {
            // Restore: the existing taxonomy is not ours to edit.
            expanded
                .add_edge(e.parent, e.child)
                .expect("restoring an original edge cannot cycle");
        } else {
            pruned.push(e);
        }
    }
    counter!("expand.pruned").add(pruned.len() as u64);

    ExpansionResult {
        expanded,
        added,
        pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        construct_graph, generate_dataset, DatasetConfig, DetectorConfig, RelationalConfig,
        RelationalModel, StructuralConfig, StructuralModel,
    };
    use taxo_graph::WeightScheme;
    use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};

    fn trained_fixture() -> (World, HypoDetector, Vec<CandidatePair>) {
        let world = World::generate(&WorldConfig::tiny(61));
        let log = ClickLog::generate(&world, &ClickConfig::tiny(61));
        let ugc = UgcCorpus::generate(&world, &UgcConfig::tiny(61));
        let built = construct_graph(
            &world.existing,
            &world.vocab,
            &log.records,
            WeightScheme::IfIqf,
        );
        let dataset = generate_dataset(
            &world.existing,
            &world.vocab,
            &built.pairs,
            &DatasetConfig::default(),
        );
        let (relational, _) =
            RelationalModel::pretrain(&world.vocab, &ugc.sentences, &RelationalConfig::tiny(61));
        let structural = StructuralModel::build(
            &world.existing,
            &world.vocab,
            &built.pairs,
            Some(&relational),
            &StructuralConfig::tiny(61),
        );
        let mut detector = HypoDetector::new(
            Some(relational),
            Some(structural),
            &DetectorConfig::tiny(61),
        );
        detector.train(&world.vocab, &dataset.train, &DetectorConfig::tiny(61));
        (world, detector, built.pairs)
    }

    #[test]
    fn expansion_enlarges_taxonomy_without_breaking_invariants() {
        let (world, detector, pairs) = trained_fixture();
        let result = expand_taxonomy(
            &detector,
            &world.vocab,
            &world.existing,
            &pairs,
            &ExpansionConfig::default(),
        );
        assert!(
            result.expanded.edge_count() >= world.existing.edge_count(),
            "expansion must not lose edges"
        );
        // Original edges all survive.
        for e in world.existing.edges() {
            assert!(result.expanded.contains_edge(e.parent, e.child));
        }
        // Pruned edges really are redundant (still reachable).
        for e in &result.pruned {
            assert!(result.expanded.is_ancestor(e.parent, e.child));
        }
        // Expansion should attach at least one new relation in a tiny
        // world with a trained detector.
        assert!(!result.added.is_empty(), "no edges attached");
    }

    #[test]
    fn expansion_builder_validates() {
        let cfg = ExpansionConfig::builder()
            .threshold(0.55)
            .only_new_concepts(false)
            .max_candidates_per_query(4)
            .build()
            .unwrap();
        assert_eq!(cfg.threshold, 0.55);
        assert!(!cfg.only_new_concepts);
        assert!(ExpansionConfig::builder().threshold(-0.1).build().is_err());
        assert!(ExpansionConfig::builder()
            .threshold(f32::NAN)
            .build()
            .is_err());
        assert!(ExpansionConfig::builder()
            .max_candidates_per_query(0)
            .build()
            .is_err());
    }

    #[test]
    fn high_threshold_attaches_nothing() {
        let (world, detector, pairs) = trained_fixture();
        let result = expand_taxonomy(
            &detector,
            &world.vocab,
            &world.existing,
            &pairs,
            &ExpansionConfig {
                threshold: 1.1,
                ..Default::default()
            },
        );
        assert!(result.added.is_empty());
        assert_eq!(result.expanded.edge_count(), world.existing.edge_count());
        assert!(result.surviving_edges().is_empty());
    }

    #[test]
    fn newly_attached_nodes_join_frontier() {
        let (world, detector, pairs) = trained_fixture();
        let result = expand_taxonomy(
            &detector,
            &world.vocab,
            &world.existing,
            &pairs,
            &ExpansionConfig::default(),
        );
        // Any edge whose parent is itself a new concept proves the
        // frontier grew; tolerate absence in tiny worlds but check the
        // mechanism at least leaves the structure valid.
        for e in &result.added {
            assert!(result.expanded.contains_node(e.parent));
            assert!(result.expanded.contains_node(e.child));
        }
    }
}
