use std::collections::{HashMap, HashSet};
use taxo_core::{ConceptId, Taxonomy, Vocabulary};
use taxo_graph::{HeteroGraph, HeteroGraphBuilder, WeightScheme};
use taxo_obs::{counter, span};
use taxo_synth::ClickRecord;
use taxo_text::ConceptMatcher;

/// A candidate hyponymy pair mined from the click log: users issuing
/// `query` clicked items identified as concept `item`, `clicks` times in
/// total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidatePair {
    pub query: ConceptId,
    pub item: ConceptId,
    pub clicks: u64,
}

/// The statistics of Table I, computed during graph construction.
#[derive(Debug, Clone, Default)]
pub struct ConstructionStats {
    /// #Items: total query→item click records processed.
    pub n_items: u64,
    /// #Nodes: existing-taxonomy nodes that appear as queries with
    /// clicked items.
    pub n_nodes_covered: usize,
    /// CNode: `#Nodes / |N|` (percent).
    pub c_node: f64,
    /// #IEdge: click records whose (query, item-concept) pair is an
    /// existing-taxonomy edge.
    pub n_iedge: u64,
    /// #Edges: existing-taxonomy edges that emerge as a query-item pair.
    pub n_edges_covered: usize,
    /// CEdge: `#Edges / |E|` (percent).
    pub c_edge: f64,
    /// #Concepts: distinct vocabulary concepts outside the existing
    /// taxonomy found in clicked items.
    pub n_new_concepts: usize,
    /// #INewEdge: click records contributing new potential hyponymy pairs.
    pub n_inew_edge: u64,
    /// #NewEdge: distinct new (query, item-concept) pairs not in the
    /// existing taxonomy.
    pub n_new_edge: usize,
    /// #IOthers: click records whose item mentions no known concept.
    pub n_iothers: u64,
}

/// Output of the graph-construction phase.
#[derive(Debug, Clone)]
pub struct ConstructionResult {
    /// The heterogeneous graph `G_h` (taxonomy ∪ click edges, weighted).
    pub graph: HeteroGraph,
    /// All distinct candidate (query, item) concept pairs with click
    /// counts — the pruned hyponymy search space.
    pub pairs: Vec<CandidatePair>,
    pub stats: ConstructionStats,
}

/// Runs the four-step graph construction of Section III-A:
/// 1. *Items collection* — click records whose query is a concept;
/// 2. *Nodes identification* — resolve each clicked item string to a
///    vocabulary concept by longest-common-substring matching;
/// 3. *Edge connection* — connect query and item concepts;
/// 4. *Weight assignment* — IF·IQF² softmax attributes (via `scheme`).
///
/// Every existing-taxonomy edge also enters the graph with weight 1.
pub fn construct_graph(
    existing: &Taxonomy,
    vocab: &Vocabulary,
    records: &[ClickRecord],
    scheme: WeightScheme,
) -> ConstructionResult {
    let _g = span!("construct.run");
    let matcher = ConceptMatcher::new(vocab);

    let mut stats = ConstructionStats::default();
    let mut pair_clicks: HashMap<(ConceptId, ConceptId), u64> = HashMap::new();
    let mut covered_nodes: HashSet<ConceptId> = HashSet::new();
    let mut covered_edges: HashSet<(ConceptId, ConceptId)> = HashSet::new();
    let mut new_concepts: HashSet<ConceptId> = HashSet::new();
    let mut new_pairs: HashSet<(ConceptId, ConceptId)> = HashSet::new();

    for r in records {
        // Step 1: only existing-taxonomy concepts act as query concepts.
        if !existing.contains_node(r.query) {
            continue;
        }
        stats.n_items += r.count;
        // Step 2: identify the clicked concept.
        let Some(item) = matcher.identify(&r.item_text) else {
            stats.n_iothers += r.count;
            continue;
        };
        if item == r.query {
            continue;
        }
        covered_nodes.insert(r.query);
        if existing.contains_edge(r.query, item) {
            stats.n_iedge += r.count;
            covered_edges.insert((r.query, item));
        } else {
            stats.n_inew_edge += r.count;
            new_pairs.insert((r.query, item));
            if !existing.contains_node(item) {
                new_concepts.insert(item);
            }
        }
        // Step 3: edge connection (aggregated).
        *pair_clicks.entry((r.query, item)).or_insert(0) += r.count;
    }

    // Mirror the Table I tallies into the metrics registry; recorded
    // values are work counts only, so they are thread-count invariant.
    counter!("construct.records_resolved").add(stats.n_items - stats.n_iothers);
    counter!("construct.records_dropped").add(stats.n_iothers);
    counter!("construct.pairs_mined").add(pair_clicks.len() as u64);
    counter!("construct.pairs_new").add(new_pairs.len() as u64);
    counter!("construct.new_concepts").add(new_concepts.len() as u64);

    stats.n_nodes_covered = covered_nodes.len();
    stats.c_node = 100.0 * covered_nodes.len() as f64 / existing.node_count().max(1) as f64;
    stats.n_edges_covered = covered_edges.len();
    stats.c_edge = 100.0 * covered_edges.len() as f64 / existing.edge_count().max(1) as f64;
    stats.n_new_concepts = new_concepts.len();
    stats.n_new_edge = new_pairs.len();

    // Step 4: weight assignment.
    let mut builder = HeteroGraphBuilder::new();
    for e in existing.edges() {
        builder.add_taxonomy_edge(e.parent, e.child);
    }
    let mut pairs: Vec<CandidatePair> = pair_clicks
        .iter()
        .map(|(&(query, item), &clicks)| CandidatePair {
            query,
            item,
            clicks,
        })
        .collect();
    pairs.sort_by_key(|p| (p.query, p.item));
    for p in &pairs {
        builder.add_clicks(p.query, p.item, p.clicks);
    }
    let graph = builder.build(scheme);

    ConstructionResult {
        graph,
        pairs,
        stats,
    }
}

/// Collects candidate pairs from *every* query concept in the log, not
/// only existing-taxonomy nodes — used at inference time so that nodes
/// attached during top-down expansion can themselves act as queries
/// ("the attached new nodes are also considered for further expanse when
/// we process the next layer", Section III-C3).
pub fn collect_all_pairs(vocab: &Vocabulary, records: &[ClickRecord]) -> Vec<CandidatePair> {
    let matcher = ConceptMatcher::new(vocab);
    let mut pair_clicks: HashMap<(ConceptId, ConceptId), u64> = HashMap::new();
    for r in records {
        let Some(item) = matcher.identify(&r.item_text) else {
            continue;
        };
        if item == r.query {
            continue;
        }
        *pair_clicks.entry((r.query, item)).or_insert(0) += r.count;
    }
    let mut pairs: Vec<CandidatePair> = pair_clicks
        .into_iter()
        .map(|((query, item), clicks)| CandidatePair {
            query,
            item,
            clicks,
        })
        .collect();
    pairs.sort_by_key(|p| (p.query, p.item));
    pairs
}

/// Groups candidate pairs by query concept — the per-anchor candidate
/// lists used by top-down inference.
pub fn candidates_by_query(pairs: &[CandidatePair]) -> HashMap<ConceptId, Vec<CandidatePair>> {
    let mut map: HashMap<ConceptId, Vec<CandidatePair>> = HashMap::new();
    for &p in pairs {
        map.entry(p.query).or_default().push(p);
    }
    for v in map.values_mut() {
        v.sort_by(|a, b| b.clicks.cmp(&a.clicks).then(a.item.cmp(&b.item)));
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxo_synth::{ClickConfig, ClickLog, World, WorldConfig};

    fn setup() -> (World, ConstructionResult) {
        let world = World::generate(&WorldConfig::tiny(11));
        let log = ClickLog::generate(&world, &ClickConfig::tiny(11));
        let result = construct_graph(
            &world.existing,
            &world.vocab,
            &log.records,
            WeightScheme::IfIqf,
        );
        (world, result)
    }

    #[test]
    fn pairs_are_deduplicated_and_sorted() {
        let (_, result) = setup();
        assert!(!result.pairs.is_empty());
        for w in result.pairs.windows(2) {
            assert!((w[0].query, w[0].item) < (w[1].query, w[1].item));
        }
    }

    #[test]
    fn graph_contains_taxonomy_and_click_edges() {
        let (world, result) = setup();
        let taxo_edges = result
            .graph
            .edges()
            .iter()
            .filter(|e| e.kind == taxo_graph::EdgeType::Taxonomy)
            .count();
        assert_eq!(taxo_edges, world.existing.edge_count());
        assert_eq!(result.graph.click_edges().count(), result.pairs.len());
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (world, result) = setup();
        let s = &result.stats;
        assert!(s.n_items > 0);
        assert!(s.n_nodes_covered <= world.existing.node_count());
        assert!(s.c_node <= 100.0 && s.c_node > 0.0);
        assert!(s.n_edges_covered <= world.existing.edge_count());
        assert!(s.n_iothers > 0, "some items mention no concept");
        // Every processed event is classified somewhere.
        assert!(s.n_iedge + s.n_inew_edge + s.n_iothers <= s.n_items);
    }

    #[test]
    fn queries_outside_existing_taxonomy_are_ignored() {
        let (world, result) = setup();
        for p in &result.pairs {
            assert!(world.existing.contains_node(p.query));
        }
    }

    #[test]
    fn new_concepts_are_detected() {
        let (world, result) = setup();
        // The withheld concepts should surface through clicked items.
        assert!(
            result.stats.n_new_concepts > 0,
            "expected new concepts among clicks"
        );
        for p in &result.pairs {
            if !world.existing.contains_node(p.item) {
                assert!(world.vocab.name(p.item).len() > 1);
            }
        }
    }

    #[test]
    fn candidates_by_query_sorted_by_clicks() {
        let (_, result) = setup();
        let by_query = candidates_by_query(&result.pairs);
        for list in by_query.values() {
            for w in list.windows(2) {
                assert!(w[0].clicks >= w[1].clicks);
            }
        }
        let total: usize = by_query.values().map(|v| v.len()).sum();
        assert_eq!(total, result.pairs.len());
    }
}
