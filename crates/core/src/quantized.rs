//! Int8 weight-quantized serving tier.
//!
//! A [`QuantizedDetector`] wraps a trained [`HypoDetector`] with int8
//! per-row-scaled copies of every Linear weight matrix (embeddings and
//! LayerNorms stay f32 — they are small and precision-critical). It
//! plugs into the same [`BatchScorer`] arena through the
//! [`ScoreBackend`] trait, so staging, bucketing, readout, and scatter
//! are shared code with the f32 tier and both tiers are allocation-free
//! after warm-up and bit-identical at any thread count.
//!
//! Quantization is forward-only and lossy: activations and accumulation
//! stay f32 in the canonical lane order, so the only error source is
//! weight rounding, bounded per GEMM output element by
//! `Σ_k |x_k| · scale_j / 2`. The serving layer measures the realized
//! divergence against the f32 tier at snapshot-build time and exports it
//! as a gauge; `loadgen --verify` re-measures it end to end.

use std::sync::Arc;

use crate::batch_scorer::ScoreBackend;
use crate::relational::RelationalModel;
use crate::{BatchScorer, HypoDetector, StructuralModel};
use taxo_core::{ConceptId, Vocabulary};
use taxo_nn::{Matrix, QuantEncoder, QuantMlp, Scratch};

/// Int8 twin of a trained [`HypoDetector`]: shares the base detector for
/// tokenization and structural features, carries quantized encoder and
/// classifier weights. Cheap to clone (the base is behind an [`Arc`]).
#[derive(Debug, Clone)]
pub struct QuantizedDetector {
    base: Arc<HypoDetector>,
    encoder: Option<QuantEncoder>,
    mlp: QuantMlp,
}

impl QuantizedDetector {
    /// Quantizes every Linear in the detector's encoder and classifier.
    /// The base detector is retained (shared, not copied) for template
    /// tokenization and structural feature lookup.
    pub fn from_detector(base: Arc<HypoDetector>) -> Self {
        let encoder = base
            .relational
            .as_ref()
            .map(|r| QuantEncoder::from_encoder(&r.encoder));
        let mlp = QuantMlp::from_mlp(&base.mlp);
        QuantizedDetector { base, encoder, mlp }
    }

    /// The full-precision detector this tier was quantized from.
    pub fn base(&self) -> &HypoDetector {
        &self.base
    }

    /// Shared handle to the full-precision detector.
    pub fn base_arc(&self) -> &Arc<HypoDetector> {
        &self.base
    }

    /// Probability that `<parent, child>` is a hyponymy relation under
    /// the quantized weights. Same fast path as
    /// [`HypoDetector::score`], different tier.
    pub fn score(&self, vocab: &Vocabulary, parent: ConceptId, child: ConceptId) -> f32 {
        crate::detector::with_thread_scorer(|s| s.score_one(self, vocab, parent, child))
    }

    /// Scores many pairs through a caller-owned arena, in input order.
    pub fn score_into(
        &self,
        scorer: &mut BatchScorer,
        vocab: &Vocabulary,
        pairs: &[(ConceptId, ConceptId)],
        out: &mut Vec<f32>,
    ) {
        scorer.score_into(self, vocab, pairs, out);
    }

    /// Largest |quant − f32| score difference over `pairs` — the
    /// realized divergence of this quantization on live data. Serving
    /// publishes this at snapshot-build time.
    pub fn max_abs_divergence(&self, vocab: &Vocabulary, pairs: &[(ConceptId, ConceptId)]) -> f32 {
        let mut scorer = BatchScorer::new();
        let mut quant = Vec::with_capacity(pairs.len());
        let mut full = Vec::with_capacity(pairs.len());
        scorer.score_into(self, vocab, pairs, &mut quant);
        scorer.score_into(self.base.as_ref(), vocab, pairs, &mut full);
        quant
            .iter()
            .zip(&full)
            .map(|(&q, &f)| (q - f).abs())
            .fold(0.0, f32::max)
    }
}

impl ScoreBackend for QuantizedDetector {
    fn relational(&self) -> Option<&RelationalModel> {
        self.base.relational.as_ref()
    }

    fn structural(&self) -> Option<&StructuralModel> {
        self.base.structural.as_ref()
    }

    fn edge_dim(&self) -> usize {
        self.base.edge_dim()
    }

    fn encode_batch(&self, ids: &[u32], segs: &[u32], seq_len: usize, scratch: &mut Scratch) {
        self.encoder
            .as_ref()
            .expect("encode_batch requires a relational model")
            .forward_batch_into(ids, segs, seq_len, scratch);
    }

    fn classify_batch(
        &self,
        features: &Matrix,
        hidden: &mut Matrix,
        logits: &mut Matrix,
        probs: &mut Vec<f32>,
    ) {
        self.mlp
            .predict_positive_batch_into(features, hidden, logits, probs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{construct_graph, DetectorConfig, RelationalConfig, StructuralConfig};
    use taxo_graph::WeightScheme;
    use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};

    fn fixture() -> (World, Vec<(ConceptId, ConceptId)>, QuantizedDetector) {
        let world = World::generate(&WorldConfig::tiny(29));
        let log = ClickLog::generate(&world, &ClickConfig::tiny(29));
        let ugc = UgcCorpus::generate(
            &world,
            &UgcConfig {
                n_sentences: 600,
                ..UgcConfig::tiny(29)
            },
        );
        let built = construct_graph(
            &world.existing,
            &world.vocab,
            &log.records,
            WeightScheme::IfIqf,
        );
        let relational =
            RelationalModel::pretrain(&world.vocab, &ugc.sentences, &RelationalConfig::tiny(29)).0;
        let structural = StructuralModel::build(
            &world.existing,
            &world.vocab,
            &built.pairs,
            Some(&relational),
            &StructuralConfig::tiny(29),
        );
        let detector = HypoDetector::new(
            Some(relational),
            Some(structural),
            &DetectorConfig::tiny(29),
        );
        let pairs: Vec<_> = built
            .pairs
            .iter()
            .take(48)
            .map(|p| (p.query, p.item))
            .collect();
        let quant = QuantizedDetector::from_detector(Arc::new(detector));
        (world, pairs, quant)
    }

    #[test]
    fn quant_scores_track_f32_scores_and_diverge_boundedly() {
        let (world, pairs, quant) = fixture();
        let div = quant.max_abs_divergence(&world.vocab, &pairs);
        // Lossy (the weights really are rounded) but close: probabilities
        // live in [0, 1], so 0.05 is a 5-point ceiling.
        assert!(div > 0.0, "quantization should not be a no-op");
        assert!(div < 0.05, "divergence {div} too large");
    }

    #[test]
    fn quant_batch_is_bitwise_identical_to_quant_singles() {
        let (world, pairs, quant) = fixture();
        let mut scorer = BatchScorer::new();
        let mut batch = Vec::new();
        quant.score_into(&mut scorer, &world.vocab, &pairs, &mut batch);
        for (&(p, c), &b) in pairs.iter().zip(&batch) {
            let single = quant.score(&world.vocab, p, c);
            assert_eq!(single.to_bits(), b.to_bits(), "pair ({p:?}, {c:?})");
        }
    }

    #[test]
    fn quant_scoring_is_deterministic_across_repeats() {
        let (world, pairs, quant) = fixture();
        let mut scorer = BatchScorer::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        quant.score_into(&mut scorer, &world.vocab, &pairs, &mut a);
        quant.score_into(&mut scorer, &world.vocab, &pairs, &mut b);
        let fa: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
        let fb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(fa, fb);
    }
}
