//! `taxo-expand` — the paper's contribution: a self-supervised,
//! user-behavior-oriented product taxonomy expansion framework
//! (Cheng et al., ICDE 2022).
//!
//! The pipeline (Fig. 1 of the paper):
//!
//! 1. **Graph construction** ([`construct_graph`], Section III-A) — mine
//!    candidate hyponymy pairs from user click logs, resolve clicked item
//!    strings to vocabulary concepts by longest-common-substring
//!    matching, and fuse taxonomy + click edges into a heterogeneous
//!    graph weighted by IF·IQF².
//! 2. **Hyponymy detection** ([`HypoDetector`], Section III-B) — classify
//!    each candidate edge using a *relational* representation from a
//!    domain-pretrained MLM ([`RelationalModel`], "C-BERT") applied to a
//!    `"<i> is a <q>"` template, concatenated with a *structural*
//!    representation from a contrastively pretrained GNN over the
//!    heterogeneous graph ([`StructuralModel`]).
//! 3. **Self-supervision** ([`generate_dataset`], Section III-C1) —
//!    balanced training data from the existing taxonomy, rebalancing the
//!    ~9:1 headword skew to 3:7 and generating shuffle/replace negatives.
//! 4. **Top-down inference** ([`expand_taxonomy`], Section III-C3) —
//!    level-order expansion with transitive-redundancy pruning, so both
//!    width and depth of the taxonomy grow.
//!
//! [`TrainedPipeline::train`] runs all of it end to end:
//!
//! ```
//! use taxo_expand::{ExpansionConfig, PipelineConfig, TrainedPipeline};
//! use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};
//!
//! let world = World::generate(&WorldConfig::tiny(1));
//! let log = ClickLog::generate(&world, &ClickConfig::tiny(1));
//! let ugc = UgcCorpus::generate(&world, &UgcConfig::tiny(1));
//!
//! let trained = TrainedPipeline::train(
//!     &world.existing, &world.vocab, &log.records, &ugc.sentences,
//!     &PipelineConfig::tiny(1));
//! let result = trained.expand(&world.existing, &world.vocab, &ExpansionConfig::default());
//! assert!(result.expanded.node_count() >= world.existing.node_count());
//! ```

mod calibration;
mod detector;
mod error_analysis;
mod graph_construction;
mod incremental;
mod inference;
mod pipeline;
mod relational;
mod report;
mod selfsup;
mod structural;
mod term_mining;

pub use calibration::threshold_for_precision;
pub use detector::{DetectorConfig, HypoDetector};
pub use error_analysis::{analyze_errors, ErrorReport, KindBreakdown};
pub use graph_construction::{
    candidates_by_query, collect_all_pairs, construct_graph, CandidatePair, ConstructionResult,
    ConstructionStats,
};
pub use incremental::{IncrementalExpander, IngestReport};
pub use inference::{expand_taxonomy, ExpansionConfig, ExpansionResult};
pub use pipeline::{PipelineConfig, TrainedPipeline};
pub use relational::{PairCtx, RelationalConfig, RelationalModel};
pub use report::{render_markdown, summarize, ExpansionSummary};
pub use selfsup::{
    generate_dataset, Dataset, DatasetConfig, DatasetStats, LabeledPair, PairKind, Strategy,
};
pub use structural::{StructuralConfig, StructuralModel};
pub use term_mining::{mine_terms, MinedTerm, TermMiningConfig};
