//! `taxo-expand` — the paper's contribution: a self-supervised,
//! user-behavior-oriented product taxonomy expansion framework
//! (Cheng et al., ICDE 2022).
//!
//! The pipeline (Fig. 1 of the paper):
//!
//! 1. **Graph construction** ([`construct_graph`], Section III-A) — mine
//!    candidate hyponymy pairs from user click logs, resolve clicked item
//!    strings to vocabulary concepts by longest-common-substring
//!    matching, and fuse taxonomy + click edges into a heterogeneous
//!    graph weighted by IF·IQF².
//! 2. **Hyponymy detection** ([`HypoDetector`], Section III-B) — classify
//!    each candidate edge using a *relational* representation from a
//!    domain-pretrained MLM ([`RelationalModel`], "C-BERT") applied to a
//!    `"<i> is a <q>"` template, concatenated with a *structural*
//!    representation from a contrastively pretrained GNN over the
//!    heterogeneous graph ([`StructuralModel`]).
//! 3. **Self-supervision** ([`generate_dataset`], Section III-C1) —
//!    balanced training data from the existing taxonomy, rebalancing the
//!    ~9:1 headword skew to 3:7 and generating shuffle/replace negatives.
//! 4. **Top-down inference** ([`expand_taxonomy`], Section III-C3) —
//!    level-order expansion with transitive-redundancy pruning, so both
//!    width and depth of the taxonomy grow.
//!
//! [`TrainedPipeline::train`] runs all of it end to end:
//!
//! ```
//! use taxo_expand::{ExpansionConfig, PipelineConfig, TrainedPipeline};
//! use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};
//!
//! let world = World::generate(&WorldConfig::tiny(1));
//! let log = ClickLog::generate(&world, &ClickConfig::tiny(1));
//! let ugc = UgcCorpus::generate(&world, &UgcConfig::tiny(1));
//!
//! let trained = TrainedPipeline::train(
//!     &world.existing, &world.vocab, &log.records, &ugc.sentences,
//!     &PipelineConfig::tiny(1));
//! let result = trained.expand(&world.existing, &world.vocab, &ExpansionConfig::default());
//! assert!(result.expanded.node_count() >= world.existing.node_count());
//! ```

mod batch_scorer;
mod calibration;
mod classifier;
mod detector;
mod error_analysis;
mod graph_construction;
mod incremental;
mod inference;
mod pipeline;
mod quantized;
pub mod relational;
mod report;
mod selfsup;
mod structural;
mod term_mining;

/// Re-export of the observability layer: `taxo_expand::obs::snapshot()`,
/// the `counter!`/`gauge!`/`histogram!`/`span!` macros, and the
/// `TAXO_LOG` / `TAXO_METRICS` reporters. Recording is always on;
/// see [`taxo_obs`] for the determinism contract.
pub use taxo_obs as obs;

pub use batch_scorer::{BatchScorer, ScoreBackend, ScratchPool};
pub use calibration::threshold_for_precision;
pub use classifier::EdgeClassifier;
pub use detector::{DetectorConfig, HypoDetector};
pub use error_analysis::{analyze_errors, ErrorReport, KindBreakdown};
pub use graph_construction::{
    candidates_by_query, collect_all_pairs, construct_graph, CandidatePair, ConstructionResult,
    ConstructionStats,
};
pub use incremental::{ExpanderState, IncrementalExpander, IngestReport};
pub use inference::{expand_taxonomy, ExpansionConfig, ExpansionConfigBuilder, ExpansionResult};
pub use pipeline::{PipelineConfig, PipelineConfigBuilder, TrainedPipeline};
pub use quantized::QuantizedDetector;
// `relational::PairCtx` (the encoder's backward context) is deliberately
// *not* re-exported at the top level: it is an implementation detail of
// encoder fine-tuning, reachable under [`relational`] for the rare caller
// that drives `forward_pair` / `backward_pair` by hand.
pub use relational::{RelationalConfig, RelationalModel};
pub use report::{render_markdown, summarize, ExpansionSummary};
pub use selfsup::{
    generate_dataset, Dataset, DatasetConfig, DatasetStats, LabeledPair, PairKind, Strategy,
};
pub use structural::{StructuralConfig, StructuralModel};
pub use term_mining::{mine_terms, MinedTerm, TermMiningConfig};

/// The curated import surface: everything a typical consumer (training a
/// pipeline, expanding a taxonomy, serving scores, watching metrics)
/// needs, and nothing internal.
///
/// ```
/// use taxo_expand::prelude::*;
/// let cfg = PipelineConfig::builder().seed(1).build().unwrap();
/// let exp = ExpansionConfig::builder().threshold(0.8).build().unwrap();
/// # let _ = (cfg, exp);
/// ```
pub mod prelude {
    pub use crate::classifier::EdgeClassifier;
    pub use crate::incremental::{ExpanderState, IncrementalExpander, IngestReport};
    pub use crate::inference::{
        expand_taxonomy, ExpansionConfig, ExpansionConfigBuilder, ExpansionResult,
    };
    pub use crate::pipeline::{PipelineConfig, PipelineConfigBuilder, TrainedPipeline};
    pub use taxo_obs::{MetricsSnapshot, SpanSnapshot};
}
