use crate::{
    construct_graph, expand_taxonomy, generate_dataset, ConstructionResult, Dataset, DatasetConfig,
    DetectorConfig, ExpansionConfig, ExpansionResult, HypoDetector, RelationalConfig,
    RelationalModel, StructuralConfig, StructuralModel,
};
use taxo_core::{TaxoError, Taxonomy, Vocabulary};
use taxo_graph::WeightScheme;
use taxo_obs::span;
use taxo_synth::ClickRecord;

/// End-to-end configuration of the expansion framework, with every
/// ablation switch the paper's Tables VI, VIII and IX exercise.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub weight_scheme: WeightScheme,
    pub relational: RelationalConfig,
    pub structural: StructuralConfig,
    pub dataset: DatasetConfig,
    pub detector: DetectorConfig,
    pub expansion: ExpansionConfig,
    /// Feed the relational representation to the classifier.
    pub use_relational: bool,
    /// Feed the structural representation to the classifier.
    pub use_structural: bool,
    /// Run MLM pretraining on UGC (otherwise the encoder is random-
    /// initialised, as in `Vanilla-BERT`).
    pub pretrain_relational: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            weight_scheme: WeightScheme::IfIqf,
            relational: RelationalConfig::default(),
            structural: StructuralConfig::default(),
            dataset: DatasetConfig::default(),
            detector: DetectorConfig::default(),
            expansion: ExpansionConfig::default(),
            use_relational: true,
            use_structural: true,
            pretrain_relational: true,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn tiny(seed: u64) -> Self {
        PipelineConfig {
            relational: RelationalConfig::tiny(seed),
            structural: StructuralConfig::tiny(seed),
            detector: DetectorConfig::tiny(seed),
            dataset: DatasetConfig {
                seed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Starts a validating builder seeded with the defaults. Prefer this
    /// over struct literals in new code: [`PipelineConfigBuilder::build`]
    /// rejects configurations the pipeline would silently mistrain on
    /// (zero epochs, NaN learning rates, no representation enabled, …).
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            cfg: PipelineConfig::default(),
        }
    }

    /// Validates an assembled configuration (the check behind
    /// [`PipelineConfigBuilder::build`], also usable on hand-built
    /// configs).
    pub fn validate(&self) -> Result<(), TaxoError> {
        if !self.use_relational && !self.use_structural {
            return Err(TaxoError::invalid_config(
                "use_relational/use_structural",
                "at least one representation must be enabled",
            ));
        }
        if self.detector.epochs == 0 {
            return Err(TaxoError::invalid_config(
                "detector.epochs",
                "must be at least 1",
            ));
        }
        if self.detector.batch == 0 {
            return Err(TaxoError::invalid_config(
                "detector.batch",
                "must be at least 1",
            ));
        }
        if !(self.detector.lr.is_finite() && self.detector.lr > 0.0) {
            return Err(TaxoError::invalid_config(
                "detector.lr",
                "must be finite and positive",
            ));
        }
        if !(0.0..1.0).contains(&self.detector.input_dropout) {
            return Err(TaxoError::invalid_config(
                "detector.input_dropout",
                "must lie in [0, 1)",
            ));
        }
        if self.pretrain_relational && self.relational.pretrain_epochs == 0 {
            return Err(TaxoError::invalid_config(
                "relational.pretrain_epochs",
                "must be at least 1 when pretrain_relational is set",
            ));
        }
        self.expansion.validate()
    }
}

/// Validating builder for [`PipelineConfig`]; construct via
/// [`PipelineConfig::builder`].
///
/// ```
/// use taxo_expand::PipelineConfig;
/// let cfg = PipelineConfig::builder().seed(7).build().unwrap();
/// assert_eq!(cfg.dataset.seed, 7);
/// assert!(PipelineConfig::builder().detector_epochs(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Sets one seed across every sub-configuration (dataset sampling,
    /// encoder init, detector init).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.relational.seed = seed;
        self.cfg.structural.seed = seed;
        self.cfg.detector.seed = seed;
        self.cfg.dataset.seed = seed;
        self
    }

    pub fn weight_scheme(mut self, scheme: WeightScheme) -> Self {
        self.cfg.weight_scheme = scheme;
        self
    }

    pub fn relational(mut self, relational: RelationalConfig) -> Self {
        self.cfg.relational = relational;
        self
    }

    pub fn structural(mut self, structural: StructuralConfig) -> Self {
        self.cfg.structural = structural;
        self
    }

    pub fn dataset(mut self, dataset: DatasetConfig) -> Self {
        self.cfg.dataset = dataset;
        self
    }

    pub fn detector(mut self, detector: DetectorConfig) -> Self {
        self.cfg.detector = detector;
        self
    }

    pub fn expansion(mut self, expansion: ExpansionConfig) -> Self {
        self.cfg.expansion = expansion;
        self
    }

    /// Shortcut for the most commonly tuned knob.
    pub fn detector_epochs(mut self, epochs: usize) -> Self {
        self.cfg.detector.epochs = epochs;
        self
    }

    /// Shortcut for MLM pretraining length.
    pub fn pretrain_epochs(mut self, epochs: usize) -> Self {
        self.cfg.relational.pretrain_epochs = epochs;
        self
    }

    pub fn use_relational(mut self, on: bool) -> Self {
        self.cfg.use_relational = on;
        self
    }

    pub fn use_structural(mut self, on: bool) -> Self {
        self.cfg.use_structural = on;
        self
    }

    pub fn pretrain_relational(mut self, on: bool) -> Self {
        self.cfg.pretrain_relational = on;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<PipelineConfig, TaxoError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A trained instance of the full framework, plus everything produced on
/// the way (construction stats for Table I, the self-supervised dataset
/// for Table III, loss curves).
#[derive(Debug, Clone)]
pub struct TrainedPipeline {
    pub detector: HypoDetector,
    pub dataset: Dataset,
    pub construction: ConstructionResult,
    /// MLM pretraining losses per epoch (empty if pretraining disabled).
    pub mlm_losses: Vec<f32>,
    /// Edge-classifier training losses per epoch.
    pub train_losses: Vec<f32>,
}

impl TrainedPipeline {
    /// Runs the complete training side of Fig. 1: graph construction,
    /// C-BERT pretraining, structural pretraining, self-supervised
    /// dataset generation, and classifier training.
    pub fn train(
        existing: &Taxonomy,
        vocab: &Vocabulary,
        records: &[ClickRecord],
        ugc: &[String],
        cfg: &PipelineConfig,
    ) -> TrainedPipeline {
        let train_guard = span!("pipeline.train");
        let construction = {
            let _g = span!("pipeline.construct_graph");
            construct_graph(existing, vocab, records, cfg.weight_scheme)
        };

        // The relational model is needed either as a classifier input or
        // as the structural initialiser (S_C-BERT).
        let need_relational =
            cfg.use_relational || (cfg.use_structural && cfg.structural.init_cbert);
        let (relational, mlm_losses) = if need_relational {
            if cfg.pretrain_relational {
                let _g = span!("pipeline.mlm_pretrain");
                let (m, losses) = RelationalModel::pretrain(vocab, ugc, &cfg.relational);
                (Some(m), losses)
            } else {
                (
                    Some(RelationalModel::vanilla(vocab, ugc, &cfg.relational)),
                    Vec::new(),
                )
            }
        } else {
            (None, Vec::new())
        };

        let structural = cfg.use_structural.then(|| {
            let _g = span!("pipeline.structural_pretrain");
            StructuralModel::build(
                existing,
                vocab,
                &construction.pairs,
                relational.as_ref(),
                &cfg.structural,
            )
        });

        let dataset = {
            let _g = span!("pipeline.dataset");
            generate_dataset(existing, vocab, &construction.pairs, &cfg.dataset)
        };

        let detector_guard = span!("pipeline.detector_train");
        let mut detector = HypoDetector::new(
            cfg.use_relational.then_some(relational).flatten(),
            structural,
            &cfg.detector,
        );
        let train_losses =
            detector.train_with_val(vocab, &dataset.train, &dataset.val, &cfg.detector);
        drop(detector_guard);
        drop(train_guard);

        TrainedPipeline {
            detector,
            dataset,
            construction,
            mlm_losses,
            train_losses,
        }
    }

    /// Expands `existing` using the candidates mined during construction.
    pub fn expand(
        &self,
        existing: &Taxonomy,
        vocab: &Vocabulary,
        cfg: &ExpansionConfig,
    ) -> ExpansionResult {
        expand_taxonomy(
            &self.detector,
            vocab,
            existing,
            &self.construction.pairs,
            cfg,
        )
    }

    /// Test-set accuracy of the trained detector.
    pub fn test_accuracy(&self, vocab: &Vocabulary) -> f64 {
        self.detector.accuracy(vocab, &self.dataset.test)
    }

    /// Converts the trained pipeline into a maintenance/serving session:
    /// an [`crate::IncrementalExpander`] over `existing`, seeded with the
    /// candidate pairs mined during graph construction. This is the
    /// bridge from offline training to the online serving layer.
    pub fn into_expander(
        self,
        existing: &Taxonomy,
        cfg: ExpansionConfig,
    ) -> crate::IncrementalExpander {
        crate::IncrementalExpander::with_pairs(
            self.detector,
            existing.clone(),
            &self.construction.pairs,
            cfg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};

    fn run(cfg: &PipelineConfig) -> (World, TrainedPipeline) {
        let world = World::generate(&WorldConfig {
            target_nodes: 220,
            max_depth: 6,
            ..WorldConfig::tiny(71)
        });
        let log = ClickLog::generate(
            &world,
            &ClickConfig {
                n_events: 12_000,
                ..ClickConfig::tiny(71)
            },
        );
        let ugc = UgcCorpus::generate(
            &world,
            &UgcConfig {
                n_sentences: 2_500,
                ..UgcConfig::tiny(71)
            },
        );
        let trained = TrainedPipeline::train(
            &world.existing,
            &world.vocab,
            &log.records,
            &ugc.sentences,
            cfg,
        );
        (world, trained)
    }

    #[test]
    fn full_pipeline_trains_and_expands() {
        let (world, trained) = run(&PipelineConfig::tiny(71));
        assert!(!trained.mlm_losses.is_empty());
        assert!(!trained.train_losses.is_empty());
        // Measured after the quick-config fix (60 detector epochs +
        // latest-tie best-validation selection): seed 71 → 0.6944 on the
        // 36-pair test split, and 0.57–0.77 across seeds {7, 13, 42, 51}.
        // Before the fix the 30-epoch schedule froze an underfit early
        // snapshot (same seed measured 0.5278).
        let acc = trained.test_accuracy(&world.vocab);
        assert!(acc > 0.55, "test accuracy {acc}");

        let result = trained.expand(&world.existing, &world.vocab, &ExpansionConfig::default());
        assert!(result.expanded.edge_count() >= world.existing.edge_count());
    }

    #[test]
    fn builder_validates() {
        let cfg = PipelineConfig::builder().seed(5).build().unwrap();
        assert_eq!(cfg.detector.seed, 5);
        assert_eq!(cfg.relational.seed, 5);

        let err = PipelineConfig::builder()
            .detector_epochs(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("detector.epochs"), "{err}");

        let err = PipelineConfig::builder()
            .use_relational(false)
            .use_structural(false)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("representation"), "{err}");

        let err = PipelineConfig::builder()
            .pretrain_epochs(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("pretrain_epochs"), "{err}");

        let mut bad = PipelineConfig::default();
        bad.detector.lr = f32::NAN;
        assert!(bad.validate().is_err());
        bad = PipelineConfig::default();
        bad.detector.input_dropout = 1.0;
        assert!(bad.validate().is_err());
        bad = PipelineConfig::default();
        bad.detector.batch = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn s_random_configuration_skips_relational() {
        let cfg = PipelineConfig {
            use_relational: false,
            structural: StructuralConfig {
                init_cbert: false,
                ..StructuralConfig::tiny(72)
            },
            ..PipelineConfig::tiny(72)
        };
        let (_, trained) = run(&cfg);
        assert!(trained.detector.relational.is_none());
        assert!(trained.detector.structural.is_some());
        assert!(trained.mlm_losses.is_empty());
    }

    #[test]
    fn vanilla_configuration_skips_pretraining_only() {
        let cfg = PipelineConfig {
            pretrain_relational: false,
            use_structural: false,
            ..PipelineConfig::tiny(73)
        };
        let (_, trained) = run(&cfg);
        assert!(trained.detector.relational.is_some());
        assert!(trained.mlm_losses.is_empty());
    }
}
