use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use taxo_core::{ConceptId, Vocabulary};
use taxo_nn::{Adam, EncoderConfig, EncoderCtx, Matrix, Module, TransformerEncoder};
use taxo_obs::counter;
use taxo_text::{ConceptMatcher, TokenVocab, CLS, MASK, SEP};

/// Configuration of the relational representation (Section III-B1).
#[derive(Debug, Clone)]
pub struct RelationalConfig {
    pub d_model: usize,
    pub n_layers: usize,
    pub n_heads: usize,
    pub ff_hidden: usize,
    pub max_len: usize,
    /// MLM pretraining epochs over the UGC corpus.
    pub pretrain_epochs: usize,
    pub lr: f32,
    /// Gradient-accumulation window (sentences per optimiser step).
    pub accum: usize,
    /// Concept-level masking (the paper's C-BERT strategy) vs. plain
    /// token-level masking (the "- Concept-level Masking" ablation).
    pub concept_level_masking: bool,
    /// Probability of masking each concept span (concept-level) — the
    /// paper masks mentioned concepts and recovers all slots.
    pub span_mask_prob: f64,
    /// Probability of masking each token (token-level ablation).
    pub token_mask_prob: f64,
    /// Encode pairs with the `"<q> is a <i>"` template (Eq. 6) vs. plain
    /// concatenation (the "- Template" ablation).
    pub use_template: bool,
    pub seed: u64,
}

impl Default for RelationalConfig {
    fn default() -> Self {
        RelationalConfig {
            d_model: 32,
            n_layers: 2,
            n_heads: 4,
            ff_hidden: 64,
            max_len: 40,
            pretrain_epochs: 6,
            lr: 3e-3,
            accum: 4,
            concept_level_masking: true,
            span_mask_prob: 0.5,
            token_mask_prob: 0.15,
            use_template: true,
            seed: 0xCBE27,
        }
    }
}

impl RelationalConfig {
    /// A very small configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        RelationalConfig {
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            ff_hidden: 32,
            pretrain_epochs: 3,
            seed,
            ..Default::default()
        }
    }
}

/// One prepared MLM example: the masked token ids and the
/// `(position, original id)` recovery targets.
type MlmExample = (Vec<u32>, Vec<(usize, u32)>);

/// Drains one gradient-accumulation window: data-parallel MLM forwards
/// (pure, against frozen parameter values), then a sequential gradient
/// reduction in example order and one optimiser step. Returns the summed
/// loss. No-op on an empty window.
fn flush_mlm_window(
    encoder: &mut TransformerEncoder,
    adam: &mut Adam,
    pending: &mut Vec<MlmExample>,
) -> f64 {
    if pending.is_empty() {
        return 0.0;
    }
    let results = {
        let enc: &TransformerEncoder = encoder;
        taxo_nn::parallel::par_map(pending.len(), |i| {
            let (masked, targets) = &pending[i];
            enc.mlm_forward(masked, targets)
        })
    };
    let mut total = 0.0f64;
    for (loss, grads) in &results {
        total += f64::from(*loss);
        if let Some(g) = grads {
            encoder.mlm_apply(g);
        }
    }
    adam.step(encoder);
    pending.clear();
    total
}

/// Forward cache of one pair encoding, consumed by
/// [`RelationalModel::backward_pair`] during fine-tuning.
#[derive(Debug, Clone)]
pub struct PairCtx {
    enc_ctx: EncoderCtx,
    seq_len: usize,
    d_model: usize,
}

/// C-BERT and the template encoder: a Transformer pretrained on UGC with
/// concept-level masking, producing the relational representation
/// `r = C-BERT([CLS] ⊕ q ⊕ is ⊕ a ⊕ i ⊕ [SEP])[0]` (Eq. 6–7).
#[derive(Debug, Clone)]
pub struct RelationalModel {
    pub encoder: TransformerEncoder,
    pub tokens: TokenVocab,
    pub use_template: bool,
    is_id: u32,
    a_id: u32,
    /// Per-concept name tokenization, indexed by `ConceptId`, built once
    /// at construction so repeated scores never re-tokenize. Concepts
    /// interned into the vocabulary *after* construction fall back to
    /// encoding on the fly (names of existing ids are immutable, so cached
    /// entries can never go stale).
    concept_tokens: Vec<Vec<u32>>,
}

impl RelationalModel {
    fn build_token_vocab(vocab: &Vocabulary, corpus: &[String]) -> TokenVocab {
        let mut tokens = TokenVocab::new();
        tokens.intern("is");
        tokens.intern("a");
        for (_, name) in vocab.iter() {
            tokens.intern_text(name);
        }
        for s in corpus {
            tokens.intern_text(s);
        }
        tokens
    }

    fn from_parts(
        tokens: TokenVocab,
        vocab: &Vocabulary,
        cfg: &RelationalConfig,
        rng: &mut StdRng,
    ) -> Self {
        let enc_cfg = EncoderConfig {
            vocab_size: tokens.len(),
            d_model: cfg.d_model,
            n_layers: cfg.n_layers,
            n_heads: cfg.n_heads,
            ff_hidden: cfg.ff_hidden,
            max_len: cfg.max_len,
        };
        let encoder = TransformerEncoder::new(enc_cfg, rng);
        let is_id = tokens.get("is").expect("'is' interned");
        let a_id = tokens.get("a").expect("'a' interned");
        // Ids are dense and in interning order, so position in `iter` is
        // the `ConceptId` index.
        let concept_tokens = vocab.iter().map(|(_, name)| tokens.encode(name)).collect();
        RelationalModel {
            encoder,
            tokens,
            use_template: cfg.use_template,
            is_id,
            a_id,
            concept_tokens,
        }
    }

    /// A randomly initialised encoder with no domain pretraining — the
    /// `Vanilla-BERT` baseline's starting point (a general-purpose model
    /// that has never seen the domain's concepts).
    pub fn vanilla(vocab: &Vocabulary, corpus: &[String], cfg: &RelationalConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tokens = Self::build_token_vocab(vocab, corpus);
        Self::from_parts(tokens, vocab, cfg, &mut rng)
    }

    /// Pretrains C-BERT on the UGC corpus with (by default) concept-level
    /// masking. Returns the model and the mean MLM loss per epoch.
    pub fn pretrain(
        vocab: &Vocabulary,
        corpus: &[String],
        cfg: &RelationalConfig,
    ) -> (Self, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tokens = Self::build_token_vocab(vocab, corpus);
        let mut model = Self::from_parts(tokens, vocab, cfg, &mut rng);
        let matcher = ConceptMatcher::new(vocab);

        let mut adam = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..corpus.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.pretrain_epochs);
        for _ in 0..cfg.pretrain_epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut counted = 0usize;
            // One gradient-accumulation window of prepared examples.
            // Masks are sampled sequentially (keeping the rng stream
            // identical to the fused loop); each full window runs its
            // forwards in parallel and reduces gradients in index order,
            // so results are thread-count invariant: within a window the
            // parameters are constant (only `adam.step` mutates values),
            // making the parallel forwards equal to the sequential ones.
            let mut pending: Vec<MlmExample> = Vec::with_capacity(cfg.accum);
            for &si in &order {
                let sentence = &corpus[si];
                let body = model.tokens.encode(sentence);
                if body.is_empty() {
                    continue;
                }
                // Sequence: [CLS] body [SEP]; body token t sits at t+1.
                let mut ids = Vec::with_capacity(body.len() + 2);
                ids.push(CLS);
                ids.extend_from_slice(&body);
                ids.push(SEP);

                let mask_positions: Vec<usize> = if cfg.concept_level_masking {
                    // Mask exactly one mentioned concept (all its tokens),
                    // keeping any other mention visible: the model must
                    // recover a concept from its relational partner, which
                    // is precisely the hyponymy signal UGC carries.
                    let spans = matcher.identify_all(sentence);
                    let mut pos = Vec::new();
                    if !spans.is_empty() {
                        let (start, len, _) = spans[rng.random_range(0..spans.len())];
                        pos.extend((start + 1)..(start + 1 + len));
                    }
                    pos
                } else {
                    let mut pos: Vec<usize> = (1..=body.len())
                        .filter(|_| rng.random_range(0.0..1.0) < cfg.token_mask_prob)
                        .collect();
                    if pos.is_empty() {
                        pos.push(1 + rng.random_range(0..body.len()));
                    }
                    pos
                };
                if mask_positions.is_empty() {
                    continue;
                }
                let mut masked = ids.clone();
                let mut targets = Vec::with_capacity(mask_positions.len());
                for &p in &mask_positions {
                    if p < masked.len() - 1 {
                        targets.push((p, ids[p]));
                        masked[p] = MASK;
                    }
                }
                if targets.is_empty() {
                    continue;
                }
                pending.push((masked, targets));
                counted += 1;
                if pending.len() >= cfg.accum {
                    total += flush_mlm_window(&mut model.encoder, &mut adam, &mut pending);
                }
            }
            total += flush_mlm_window(&mut model.encoder, &mut adam, &mut pending);
            counter!("train.mlm.epochs").inc();
            counter!("train.mlm.examples").add(counted as u64);
            epoch_losses.push((total / counted.max(1) as f64) as f32);
        }
        (model, epoch_losses)
    }

    /// Token and segment ids for the pair input (Eq. 6): with the
    /// template, `[CLS] i is a q [SEP]`; without it, `[CLS] i [SEP] q
    /// [SEP]`. Segment 0 covers `[CLS]` and the first concept, segment 1
    /// the rest — the BERT sentence-A/B convention, which lets the
    /// encoder represent pair *order* (shuffle negatives have the same
    /// token multiset as their positives).
    pub fn pair_ids(&self, query_name: &str, item_name: &str) -> (Vec<u32>, Vec<u32>) {
        let q = self.tokens.encode(query_name);
        let i = self.tokens.encode(item_name);
        let mut ids = Vec::with_capacity(q.len() + i.len() + 4);
        ids.push(CLS);
        // Note the template order: the paper reads "<child> is a
        // <parent>" as the natural-language statement of hyponymy, with
        // the *item* (candidate hyponym) first.
        if self.use_template {
            ids.extend_from_slice(&i);
            ids.push(self.is_id);
            ids.push(self.a_id);
            ids.extend_from_slice(&q);
        } else {
            ids.extend_from_slice(&i);
            ids.push(SEP);
            ids.extend_from_slice(&q);
        }
        ids.push(SEP);
        let boundary = 1 + i.len();
        let segments = (0..ids.len()).map(|t| u32::from(t >= boundary)).collect();
        (ids, segments)
    }

    /// Appends the cached name tokens of `c` to `out` without allocating;
    /// concepts interned after construction are encoded on the fly (still
    /// allocation-free via [`TokenVocab::encode_into`]).
    fn concept_tokens_into(&self, vocab: &Vocabulary, c: ConceptId, out: &mut Vec<u32>) {
        match self.concept_tokens.get(c.index()) {
            Some(cached) => out.extend_from_slice(cached),
            None => self.tokens.encode_into(vocab.name(c), out),
        }
    }

    /// Id-based, cache-backed [`RelationalModel::pair_ids`] for the
    /// inference fast path: appends the pair template — already truncated
    /// to the encoder's `max_len` — to `ids`/`segments` and returns the
    /// truncated length. Produces exactly the tokens `pair_ids` would
    /// (then truncated the way the encoder truncates), so downstream
    /// scores are bitwise identical.
    pub fn append_pair_ids(
        &self,
        vocab: &Vocabulary,
        query: ConceptId,
        item: ConceptId,
        ids: &mut Vec<u32>,
        segments: &mut Vec<u32>,
    ) -> usize {
        let start = ids.len();
        ids.push(CLS);
        self.concept_tokens_into(vocab, item, ids);
        let boundary = ids.len() - start; // = 1 + item_tokens.len()
        if self.use_template {
            ids.push(self.is_id);
            ids.push(self.a_id);
        } else {
            ids.push(SEP);
        }
        self.concept_tokens_into(vocab, query, ids);
        ids.push(SEP);
        let max_len = self.encoder.config.max_len;
        if ids.len() - start > max_len {
            ids.truncate(start + max_len);
        }
        let len = ids.len() - start;
        segments.extend((0..len).map(|t| u32::from(t >= boundary)));
        len
    }

    /// Encodes a pair into its relational representation `r` (1 × d) and
    /// a backward context. The readout averages the `[CLS]` vector with
    /// the mean of all token states: a small from-scratch encoder carries
    /// most pair information in the token states themselves, whereas the
    /// paper's full-size BERT can afford a pure-`[CLS]` readout (Eq. 7).
    pub fn forward_pair(&self, query_name: &str, item_name: &str) -> (Matrix, PairCtx) {
        let (ids, segments) = self.pair_ids(query_name, item_name);
        let (hidden, enc_ctx) = self.encoder.forward_with_segments(&ids, &segments);
        let n = hidden.rows();
        let r = Matrix::from_fn(1, hidden.cols(), |_, c| {
            let mean: f32 = (0..n).map(|t| hidden[(t, c)]).sum::<f32>() / n as f32;
            0.5 * hidden[(0, c)] + 0.5 * mean
        });
        let ctx = PairCtx {
            enc_ctx,
            seq_len: n,
            d_model: hidden.cols(),
        };
        (r, ctx)
    }

    /// Routes the gradient w.r.t. `r` back through the encoder.
    pub fn backward_pair(&mut self, ctx: &PairCtx, d_r: &Matrix) {
        let n = ctx.seq_len as f32;
        let mut d_hidden = Matrix::zeros(ctx.seq_len, ctx.d_model);
        for c in 0..ctx.d_model {
            let shared = 0.5 * d_r[(0, c)] / n;
            for t in 0..ctx.seq_len {
                d_hidden[(t, c)] = shared;
            }
            d_hidden[(0, c)] += 0.5 * d_r[(0, c)];
        }
        self.encoder.backward(&ctx.enc_ctx, &d_hidden);
    }

    /// The `[CLS]` embedding of a single concept (Eq. 8), used to
    /// initialise structural node features.
    pub fn encode_concept(&self, name: &str) -> Vec<f32> {
        let mut ids = vec![CLS];
        ids.extend(self.tokens.encode(name));
        ids.push(SEP);
        self.encoder.cls_vector(&ids)
    }

    /// Relational representation dimension.
    pub fn dim(&self) -> usize {
        self.encoder.config.d_model
    }
}

impl Module for RelationalModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut taxo_nn::Param)) {
        self.encoder.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxo_synth::{UgcConfig, UgcCorpus, World, WorldConfig};

    fn setup() -> (World, UgcCorpus) {
        let world = World::generate(&WorldConfig::tiny(21));
        let corpus = UgcCorpus::generate(&world, &UgcConfig::tiny(21));
        (world, corpus)
    }

    #[test]
    fn pretraining_reduces_mlm_loss() {
        let (world, corpus) = setup();
        let cfg = RelationalConfig {
            pretrain_epochs: 3,
            ..RelationalConfig::tiny(1)
        };
        let (_, losses) = RelationalModel::pretrain(&world.vocab, &corpus.sentences, &cfg);
        assert_eq!(losses.len(), 3);
        assert!(losses[2] < losses[0], "MLM loss should fall: {losses:?}");
    }

    #[test]
    fn template_ids_follow_eq6() {
        let (world, corpus) = setup();
        let model =
            RelationalModel::vanilla(&world.vocab, &corpus.sentences, &RelationalConfig::tiny(2));
        let q = world.name(world.roots[0]);
        let (ids, segments) = model.pair_ids(q, q);
        assert_eq!(ids[0], CLS);
        assert_eq!(*ids.last().unwrap(), SEP);
        assert!(ids.contains(&model.is_id));
        assert!(ids.contains(&model.a_id));
        assert_eq!(segments.len(), ids.len());
        assert_eq!(segments[0], 0);
        assert_eq!(*segments.last().unwrap(), 1);
    }

    #[test]
    fn no_template_uses_separator() {
        let (world, corpus) = setup();
        let cfg = RelationalConfig {
            use_template: false,
            ..RelationalConfig::tiny(2)
        };
        let model = RelationalModel::vanilla(&world.vocab, &corpus.sentences, &cfg);
        let q = world.name(world.roots[0]);
        let (ids, _) = model.pair_ids(q, q);
        // Middle separator plus final separator.
        assert_eq!(ids.iter().filter(|&&t| t == SEP).count(), 2);
        assert!(!ids.contains(&model.is_id) || world.name(world.roots[0]).contains("is"));
    }

    #[test]
    fn pair_representation_is_direction_sensitive() {
        let (world, corpus) = setup();
        let (model, _) =
            RelationalModel::pretrain(&world.vocab, &corpus.sentences, &RelationalConfig::tiny(3));
        let root = world.name(world.roots[0]);
        let child_id = world.truth.children(world.roots[0])[0];
        let child = world.name(child_id);
        let (r1, _) = model.forward_pair(root, child);
        let (r2, _) = model.forward_pair(child, root);
        let diff: f32 = r1
            .data()
            .iter()
            .zip(r2.data())
            .map(|(&a, &b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "representations must encode direction");
    }

    #[test]
    fn backward_pair_accumulates_encoder_grads() {
        let (world, corpus) = setup();
        let mut model =
            RelationalModel::vanilla(&world.vocab, &corpus.sentences, &RelationalConfig::tiny(4));
        let q = world.name(world.roots[0]);
        let (r, ctx) = model.forward_pair(q, q);
        let d_r = Matrix::from_fn(1, r.cols(), |_, c| 0.1 * (c as f32 + 1.0));
        model.backward_pair(&ctx, &d_r);
        let mut grad_norm = 0.0f32;
        model.visit_params(&mut |p| grad_norm += p.grad.norm());
        assert!(grad_norm > 0.0);
    }

    #[test]
    fn encode_concept_has_model_dim() {
        let (world, corpus) = setup();
        let model =
            RelationalModel::vanilla(&world.vocab, &corpus.sentences, &RelationalConfig::tiny(5));
        let v = model.encode_concept(world.name(world.roots[0]));
        assert_eq!(v.len(), model.dim());
    }
}
