use crate::CandidatePair;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;
use taxo_core::{ConceptId, Taxonomy, Vocabulary};
use taxo_text::is_headword_edge;

/// Which self-supervision strategy generates the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's adaptive strategy (Section III-C1): keep every
    /// non-headword positive, subsample headword positives (preferring
    /// ones corroborated by user clicks) to a balanced ratio.
    Adaptive,
    /// The conventional strategy of prior work (TaxoExpan/STEAM et al.):
    /// use every edge, inheriting the taxonomy's 9:1 headword skew
    /// (Tables XI/XII, Fig. 4 compare the two).
    Previous,
}

/// Fine-grained provenance of a labeled pair (the column breakdown of
/// Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// Positive edge detectable by headword.
    PositiveHead,
    /// Positive edge not detectable by headword.
    PositiveOther,
    /// Negative built by swapping the edge's direction.
    NegativeShuffle,
    /// Negative built by replacing the item with an unrelated concept.
    NegativeReplace,
}

impl PairKind {
    pub fn is_positive(self) -> bool {
        matches!(self, PairKind::PositiveHead | PairKind::PositiveOther)
    }
}

/// One self-supervised training example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledPair {
    pub parent: ConceptId,
    pub child: ConceptId,
    pub label: bool,
    pub kind: PairKind,
}

/// Counts per [`PairKind`] (the columns of Tables III and XI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatasetStats {
    pub positives: usize,
    pub negatives: usize,
    pub head: usize,
    pub others: usize,
    pub shuffle: usize,
    pub replace: usize,
}

/// A train/validation/test split of labeled pairs (60/20/20 as in the
/// paper).
#[derive(Debug, Clone)]
pub struct Dataset {
    pub train: Vec<LabeledPair>,
    pub val: Vec<LabeledPair>,
    pub test: Vec<LabeledPair>,
}

impl Dataset {
    /// Statistics over all three splits.
    pub fn stats(&self) -> DatasetStats {
        let mut s = DatasetStats::default();
        for p in self.all() {
            match p.kind {
                PairKind::PositiveHead => {
                    s.positives += 1;
                    s.head += 1;
                }
                PairKind::PositiveOther => {
                    s.positives += 1;
                    s.others += 1;
                }
                PairKind::NegativeShuffle => {
                    s.negatives += 1;
                    s.shuffle += 1;
                }
                PairKind::NegativeReplace => {
                    s.negatives += 1;
                    s.replace += 1;
                }
            }
        }
        s
    }

    /// Iterates over every pair of every split.
    pub fn all(&self) -> impl Iterator<Item = &LabeledPair> {
        self.train.iter().chain(&self.val).chain(&self.test)
    }

    /// Total size.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Configuration of self-supervised dataset generation.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    pub strategy: Strategy,
    /// Target headword:other ratio among positives, as (head, other) —
    /// the paper uses 3:7 (Table III).
    pub head_ratio: (usize, usize),
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            strategy: Strategy::Adaptive,
            head_ratio: (3, 7),
            seed: 0xDA7A,
        }
    }
}

/// Generates the self-supervised dataset from the existing taxonomy
/// (Section III-C1): balanced positives plus one negative per positive,
/// alternating shuffle and replace, split 60/20/20.
pub fn generate_dataset(
    existing: &Taxonomy,
    vocab: &Vocabulary,
    click_pairs: &[CandidatePair],
    cfg: &DatasetConfig,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Classify every edge of the existing taxonomy.
    let mut head_edges = Vec::new();
    let mut other_edges = Vec::new();
    for e in existing.edges() {
        if is_headword_edge(vocab.name(e.parent), vocab.name(e.child)) {
            head_edges.push(e);
        } else {
            other_edges.push(e);
        }
    }

    let clicked: HashSet<(ConceptId, ConceptId)> =
        click_pairs.iter().map(|p| (p.query, p.item)).collect();

    // Positive selection.
    let positives: Vec<(taxo_core::Edge, PairKind)> = match cfg.strategy {
        Strategy::Previous => head_edges
            .iter()
            .map(|&e| (e, PairKind::PositiveHead))
            .chain(other_edges.iter().map(|&e| (e, PairKind::PositiveOther)))
            .collect(),
        Strategy::Adaptive => {
            // Keep all non-headword edges; subsample headword edges to the
            // target ratio, preferring click-corroborated ones.
            let target_head = (other_edges.len() * cfg.head_ratio.0) / cfg.head_ratio.1.max(1);
            head_edges.shuffle(&mut rng);
            head_edges.sort_by_key(|e| !clicked.contains(&(e.parent, e.child)));
            head_edges
                .iter()
                .take(target_head.max(1))
                .map(|&e| (e, PairKind::PositiveHead))
                .chain(other_edges.iter().map(|&e| (e, PairKind::PositiveOther)))
                .collect()
        }
    };

    // Replacement pools: the paper fixes the query concept and samples
    // replacement items "from user click logs, which are nodes in the
    // filtered taxonomy but neither parents nor descendants of c_q" — we
    // read that as items clicked *under that query*: intention-drifted
    // relatives, i.e. semantically close, *hard* negatives (a random
    // unrelated concept would be trivially separable by embedding
    // distance alone). A global pool backs up queries with no usable
    // clicked items.
    let mut per_query_pool: std::collections::HashMap<ConceptId, Vec<ConceptId>> =
        std::collections::HashMap::new();
    let mut global_pool: Vec<ConceptId> = Vec::new();
    for p in click_pairs {
        if existing.contains_node(p.item) {
            per_query_pool.entry(p.query).or_default().push(p.item);
            global_pool.push(p.item);
        }
    }
    global_pool.sort();
    global_pool.dedup();
    if global_pool.is_empty() {
        global_pool = existing.nodes().collect();
    }

    // Negative generation: one per positive, alternating strategies.
    let mut examples: Vec<LabeledPair> = Vec::with_capacity(positives.len() * 2);
    for (k, &(e, kind)) in positives.iter().enumerate() {
        examples.push(LabeledPair {
            parent: e.parent,
            child: e.child,
            label: true,
            kind,
        });
        if k % 2 == 0 {
            // Shuffle: reverse the direction.
            examples.push(LabeledPair {
                parent: e.child,
                child: e.parent,
                label: false,
                kind: PairKind::NegativeShuffle,
            });
        } else {
            // Replace: same query, an item clicked under it that is not
            // actually related.
            let mut negative = None;
            let local = per_query_pool.get(&e.parent);
            for attempt in 0..30 {
                let pool: &[ConceptId] = match local {
                    // Prefer the query's own clicked items; fall back to
                    // the global pool for the last attempts.
                    Some(p) if attempt < 20 && !p.is_empty() => p,
                    _ => &global_pool,
                };
                let cand = pool[rng.random_range(0..pool.len())];
                if cand != e.parent
                    && cand != e.child
                    && !existing.is_ancestor(e.parent, cand)
                    && !existing.is_ancestor(cand, e.parent)
                {
                    negative = Some(cand);
                    break;
                }
            }
            match negative {
                Some(cand) => examples.push(LabeledPair {
                    parent: e.parent,
                    child: cand,
                    label: false,
                    kind: PairKind::NegativeReplace,
                }),
                None => examples.push(LabeledPair {
                    parent: e.child,
                    child: e.parent,
                    label: false,
                    kind: PairKind::NegativeShuffle,
                }),
            }
        }
    }

    examples.shuffle(&mut rng);
    let n = examples.len();
    let train_end = (n * 6) / 10;
    let val_end = (n * 8) / 10;
    Dataset {
        train: examples[..train_end].to_vec(),
        val: examples[train_end..val_end].to_vec(),
        test: examples[val_end..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct_graph;
    use taxo_graph::WeightScheme;
    use taxo_synth::{ClickConfig, ClickLog, World, WorldConfig};

    fn setup(strategy: Strategy) -> (World, Dataset) {
        let world = World::generate(&WorldConfig::tiny(41));
        let log = ClickLog::generate(&world, &ClickConfig::tiny(41));
        let built = construct_graph(
            &world.existing,
            &world.vocab,
            &log.records,
            WeightScheme::IfIqf,
        );
        let ds = generate_dataset(
            &world.existing,
            &world.vocab,
            &built.pairs,
            &DatasetConfig {
                strategy,
                ..Default::default()
            },
        );
        (world, ds)
    }

    #[test]
    fn positives_negatives_balanced_one_to_one() {
        let (_, ds) = setup(Strategy::Adaptive);
        let s = ds.stats();
        assert_eq!(s.positives, s.negatives);
        assert!(s.positives > 0);
    }

    #[test]
    fn adaptive_enforces_head_ratio() {
        let (_, ds) = setup(Strategy::Adaptive);
        let s = ds.stats();
        // Head:other ≈ 3:7 (integer rounding tolerance).
        let expected = (s.others * 3) / 7;
        assert!(
            s.head <= expected + 1 && s.head + 1 >= expected.min(s.head + 1),
            "head {} others {} expected ~{expected}",
            s.head,
            s.others
        );
        assert!(s.head < s.others);
    }

    #[test]
    fn previous_strategy_is_head_skewed() {
        let (_, ds) = setup(Strategy::Previous);
        let s = ds.stats();
        assert!(
            s.head > s.others,
            "previous strategy keeps the headword skew: {s:?}"
        );
    }

    #[test]
    fn shuffle_replace_roughly_balanced() {
        let (_, ds) = setup(Strategy::Adaptive);
        let s = ds.stats();
        let diff = s.shuffle.abs_diff(s.replace);
        assert!(
            diff <= s.negatives / 3 + 2,
            "shuffle {} vs replace {}",
            s.shuffle,
            s.replace
        );
    }

    #[test]
    fn split_is_60_20_20() {
        let (_, ds) = setup(Strategy::Adaptive);
        let n = ds.len() as f64;
        assert!((ds.train.len() as f64 / n - 0.6).abs() < 0.02);
        assert!((ds.val.len() as f64 / n - 0.2).abs() < 0.02);
        assert!((ds.test.len() as f64 / n - 0.2).abs() < 0.02);
    }

    #[test]
    fn positive_labels_are_true_edges() {
        let (world, ds) = setup(Strategy::Adaptive);
        for p in ds.all() {
            if p.label {
                assert!(world.existing.contains_edge(p.parent, p.child));
            } else {
                assert!(!world.existing.contains_edge(p.parent, p.child));
            }
        }
    }

    #[test]
    fn negatives_are_not_ancestor_related() {
        let (world, ds) = setup(Strategy::Adaptive);
        for p in ds.all() {
            if p.kind == PairKind::NegativeReplace {
                assert!(!world.existing.is_ancestor(p.parent, p.child));
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let (_, a) = setup(Strategy::Adaptive);
        let (_, b) = setup(Strategy::Adaptive);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }
}
