//! The batched inference fast path (no gradients, no per-pair
//! allocations).
//!
//! [`BatchScorer`] scores many `(parent, child)` pairs with three
//! amortisations over the scalar [`crate::HypoDetector::score`] loop:
//!
//! 1. **Length bucketing** — pair templates are grouped by (truncated)
//!    token length, and every bucket runs *one* row-batched encoder
//!    forward instead of one forward per pair. Attention never mixes rows
//!    across sequences, and every other layer is row-wise, so each pair's
//!    score is bitwise identical to scoring it alone.
//! 2. **One MLP GEMM per bucket** — edge features are assembled into a
//!    single `batch × edge_dim` matrix and classified in one pass.
//! 3. **Arena reuse** — all intermediates live in a [`Scratch`] plus a few
//!    staging vectors owned by the scorer; after the largest bucket shape
//!    has been seen once, a scoring pass performs zero heap allocations.
//!
//! Determinism: scores are independent of batch composition, ordering,
//! and thread count — the same guarantees the training kernels give,
//! inherited from the `*_into` twins in `taxo_nn`.

use std::sync::Mutex;

use crate::relational::RelationalModel;
use crate::{HypoDetector, StructuralModel};
use taxo_core::{ConceptId, Vocabulary};
use taxo_nn::{Matrix, Scratch};

/// The model stack a batched scoring pass runs through: the
/// full-precision [`HypoDetector`] or its int8 twin
/// [`crate::QuantizedDetector`]. The backend supplies tokenization
/// metadata and the two forward stages; all staging, length bucketing,
/// feature assembly, and scatter logic in [`BatchScorer`] is
/// tier-independent, so both tiers share one allocation-free arena and
/// inherit the same determinism guarantees.
pub trait ScoreBackend {
    /// The relational model used for templates and tokenization
    /// (`None` → structural-only detector).
    fn relational(&self) -> Option<&RelationalModel>;
    /// The structural feature source, if any.
    fn structural(&self) -> Option<&StructuralModel>;
    /// Width of the assembled edge-feature vector.
    fn edge_dim(&self) -> usize;
    /// One row-batched encoder forward over a rectangular token block,
    /// leaving per-token hidden states in `scratch.enc_out`.
    fn encode_batch(&self, ids: &[u32], segs: &[u32], seq_len: usize, scratch: &mut Scratch);
    /// One classifier pass over assembled edge features, appending the
    /// positive-class probability of each row to `probs`.
    fn classify_batch(
        &self,
        features: &Matrix,
        hidden: &mut Matrix,
        logits: &mut Matrix,
        probs: &mut Vec<f32>,
    );
}

impl ScoreBackend for HypoDetector {
    fn relational(&self) -> Option<&RelationalModel> {
        self.relational.as_ref()
    }

    fn structural(&self) -> Option<&StructuralModel> {
        self.structural.as_ref()
    }

    fn edge_dim(&self) -> usize {
        HypoDetector::edge_dim(self)
    }

    fn encode_batch(&self, ids: &[u32], segs: &[u32], seq_len: usize, scratch: &mut Scratch) {
        self.relational
            .as_ref()
            .expect("encode_batch requires a relational model")
            .encoder
            .forward_batch_into(ids, segs, seq_len, scratch);
    }

    fn classify_batch(
        &self,
        features: &Matrix,
        hidden: &mut Matrix,
        logits: &mut Matrix,
        probs: &mut Vec<f32>,
    ) {
        self.mlp
            .predict_positive_batch_into(features, hidden, logits, probs);
    }
}

/// Reusable state for batched scoring. Create once (per thread) and feed
/// it any number of `score_into` calls; buffers grow to the largest batch
/// seen and are then reused allocation-free.
#[derive(Debug, Default)]
pub struct BatchScorer {
    scratch: Scratch,
    /// Staged template tokens of every pair in the current call, jagged;
    /// pair `p` occupies `stage_ids[offsets[p]..offsets[p + 1]]`.
    stage_ids: Vec<u32>,
    stage_segs: Vec<u32>,
    offsets: Vec<usize>,
    /// Pair indices sorted by template length — consecutive runs of equal
    /// length form the buckets.
    order: Vec<usize>,
    /// Rectangular token block of the current bucket.
    flat_ids: Vec<u32>,
    flat_segs: Vec<u32>,
    /// Positive-class probabilities of the current bucket.
    probs: Vec<f32>,
    /// Result buffer for [`BatchScorer::score_one`].
    single: Vec<f32>,
}

impl BatchScorer {
    pub fn new() -> Self {
        BatchScorer::default()
    }

    /// Scores every pair, writing probabilities into `out` (cleared first)
    /// in input order. For the full-precision backend this is bitwise
    /// identical to calling [`crate::HypoDetector::score`] per pair.
    pub fn score_into<B: ScoreBackend>(
        &mut self,
        det: &B,
        vocab: &Vocabulary,
        pairs: &[(ConceptId, ConceptId)],
        out: &mut Vec<f32>,
    ) {
        self.score_with_features_into(
            det,
            vocab,
            pairs,
            |p, row| {
                if let Some(st) = det.structural() {
                    let (q, i) = pairs[p];
                    st.pair_features_into(q, i, row);
                }
            },
            out,
        );
    }

    /// [`BatchScorer::score_into`] with the structural feature slice
    /// supplied by the caller: `fill_structural(p, slice)` receives each
    /// pair's **zeroed** structural slice (`feature_dim` wide, empty when
    /// the detector has no structural model) and must write the same
    /// bytes [`crate::StructuralModel::pair_features_into`] would — e.g.
    /// copied from a table precomputed once per serving snapshot. Leaving
    /// the slice untouched reproduces the unknown-concept zero vector.
    pub fn score_with_features_into<B: ScoreBackend, F>(
        &mut self,
        det: &B,
        vocab: &Vocabulary,
        pairs: &[(ConceptId, ConceptId)],
        fill_structural: F,
        out: &mut Vec<f32>,
    ) where
        F: Fn(usize, &mut [f32]),
    {
        out.clear();
        if pairs.is_empty() {
            return;
        }
        out.resize(pairs.len(), 0.0);
        let BatchScorer {
            scratch,
            stage_ids,
            stage_segs,
            offsets,
            order,
            flat_ids,
            flat_segs,
            probs,
            ..
        } = self;
        let rel_dim = det.relational().map_or(0, |r| r.dim());
        let edge_dim = det.edge_dim();

        let Some(rel) = det.relational() else {
            // Structural-only detector: no encoder, a single MLP batch.
            debug_assert!(
                det.structural().is_some(),
                "detector has at least one representation"
            );
            scratch.features.reset(pairs.len(), edge_dim);
            for r in 0..pairs.len() {
                fill_structural(r, scratch.features.row_mut(r));
            }
            probs.clear();
            det.classify_batch(
                &scratch.features,
                &mut scratch.mlp_hidden,
                &mut scratch.logits,
                probs,
            );
            out.copy_from_slice(probs);
            return;
        };

        // Stage every pair's (truncated) template once.
        stage_ids.clear();
        stage_segs.clear();
        offsets.clear();
        offsets.push(0);
        for &(q, i) in pairs {
            rel.append_pair_ids(vocab, q, i, stage_ids, stage_segs);
            offsets.push(stage_ids.len());
        }

        // Bucket by template length. `sort_unstable` (no temp buffer) with
        // the index as tiebreaker keeps the order reproducible; bucket
        // composition cannot change any score regardless.
        order.clear();
        order.extend(0..pairs.len());
        order.sort_unstable_by_key(|&p| (offsets[p + 1] - offsets[p], p));

        let mut start = 0;
        while start < order.len() {
            let seq_len = offsets[order[start] + 1] - offsets[order[start]];
            let mut end = start + 1;
            while end < order.len() && offsets[order[end] + 1] - offsets[order[end]] == seq_len {
                end += 1;
            }
            let bucket = &order[start..end];

            // One rectangular token block, one encoder forward.
            flat_ids.clear();
            flat_segs.clear();
            for &p in bucket {
                flat_ids.extend_from_slice(&stage_ids[offsets[p]..offsets[p + 1]]);
                flat_segs.extend_from_slice(&stage_segs[offsets[p]..offsets[p + 1]]);
            }
            det.encode_batch(flat_ids, flat_segs, seq_len, scratch);

            // Assemble edge features: relational readout (Eq. 7 variant —
            // the exact expression of `forward_pair`) then the structural
            // slice (Eq. 13).
            scratch.features.reset(bucket.len(), edge_dim);
            for (r, &p) in bucket.iter().enumerate() {
                let base = r * seq_len;
                let row = scratch.features.row_mut(r);
                for (c, slot) in row[..rel_dim].iter_mut().enumerate() {
                    let mean: f32 = (0..seq_len)
                        .map(|t| scratch.enc_out[(base + t, c)])
                        .sum::<f32>()
                        / seq_len as f32;
                    *slot = 0.5 * scratch.enc_out[(base, c)] + 0.5 * mean;
                }
                fill_structural(p, &mut row[rel_dim..]);
            }

            // One MLP GEMM for the whole bucket; scatter back.
            probs.clear();
            det.classify_batch(
                &scratch.features,
                &mut scratch.mlp_hidden,
                &mut scratch.logits,
                probs,
            );
            for (r, &p) in bucket.iter().enumerate() {
                out[p] = probs[r];
            }
            start = end;
        }
    }

    /// Scores a single pair through the same arena — the scalar fast path.
    pub fn score_one<B: ScoreBackend>(
        &mut self,
        det: &B,
        vocab: &Vocabulary,
        parent: ConceptId,
        child: ConceptId,
    ) -> f32 {
        let mut out = std::mem::take(&mut self.single);
        self.score_into(det, vocab, &[(parent, child)], &mut out);
        let score = out[0];
        self.single = out; // keep the capacity for the next call
        score
    }
}

/// A lock-protected stack of warm [`BatchScorer`]s, shared across
/// `par_map` workers: scoped worker threads are re-spawned per call, so a
/// `thread_local` arena would never stay warm — popping from a pool does.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<BatchScorer>>,
}

impl ScratchPool {
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Pops a warm scorer, or builds a cold one if the pool is empty.
    pub fn take(&self) -> BatchScorer {
        self.pool.lock().unwrap().pop().unwrap_or_default()
    }

    /// Returns a scorer to the pool for reuse.
    pub fn put(&self, scorer: BatchScorer) {
        self.pool.lock().unwrap().push(scorer);
    }
}
