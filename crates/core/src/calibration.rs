//! Decision-threshold calibration against a precision target.
//!
//! The deployed system runs at a precision point (the paper ships at 88%
//! precision); a fixed 0.5 cut-off is rarely that point. This module
//! picks the expansion threshold on validation data.

use crate::{HypoDetector, LabeledPair};
use taxo_core::Vocabulary;

/// Picks the *lowest* threshold whose precision on `scored`
/// (`(score, is_positive)`) reaches `target_precision`, maximising recall
/// at that precision. Falls back to the F1-maximising threshold when the
/// target is unreachable.
pub fn threshold_for_precision(scored: &[(f32, bool)], target_precision: f64) -> f32 {
    assert!((0.0..=1.0).contains(&target_precision));
    if scored.is_empty() {
        return 0.5;
    }
    let mut sorted: Vec<(f32, bool)> = scored.to_vec();
    // Descending by score; walking down adds predictions one at a time.
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));

    let total_pos = sorted.iter().filter(|&&(_, l)| l).count();
    let mut tp = 0usize;
    let mut best_target: Option<f32> = None; // lowest threshold meeting target
    let mut best_f1 = (0.0f64, 0.5f32);
    for (k, &(score, label)) in sorted.iter().enumerate() {
        if label {
            tp += 1;
        }
        // A threshold can only sit *between* distinct score levels: if
        // the next item has the same score it would be admitted too, so
        // this prefix is not a realisable selection.
        if sorted.get(k + 1).is_some_and(|&(next, _)| next == score) {
            continue;
        }
        let selected = k + 1;
        let precision = tp as f64 / selected as f64;
        let recall = if total_pos == 0 {
            0.0
        } else {
            tp as f64 / total_pos as f64
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        // Threshold just below this score admits the first k+1 items.
        let threshold = score - f32::EPSILON;
        if precision >= target_precision {
            best_target = Some(threshold);
        }
        if f1 > best_f1.0 {
            best_f1 = (f1, threshold);
        }
    }
    best_target.unwrap_or(best_f1.1).clamp(0.0, 1.0)
}

impl HypoDetector {
    /// Scores `pairs` and returns the threshold hitting
    /// `target_precision` on them (see [`threshold_for_precision`]).
    pub fn calibrate_threshold(
        &self,
        vocab: &Vocabulary,
        pairs: &[LabeledPair],
        target_precision: f64,
    ) -> f32 {
        let scored: Vec<(f32, bool)> = pairs
            .iter()
            .map(|p| (self.score(vocab, p.parent, p.child), p.label))
            .collect();
        threshold_for_precision(&scored, target_precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_scores_hit_any_target() {
        // Positives all above 0.8, negatives below 0.3.
        let scored: Vec<(f32, bool)> = (0..10)
            .map(|i| (0.8 + i as f32 * 0.01, true))
            .chain((0..10).map(|i| (0.3 - i as f32 * 0.01, false)))
            .collect();
        let t = threshold_for_precision(&scored, 1.0);
        assert!(t > 0.3 && t < 0.9, "threshold {t}");
        // At this threshold every positive is selected, no negative.
        let selected: Vec<_> = scored.iter().filter(|&&(s, _)| s > t).collect();
        assert_eq!(selected.len(), 10);
        assert!(selected.iter().all(|&&(_, l)| l));
    }

    #[test]
    fn target_precision_trades_recall() {
        // Interleaved: top-2 are positive, then alternating.
        let scored = vec![
            (0.9f32, true),
            (0.8, true),
            (0.7, false),
            (0.6, true),
            (0.5, false),
            (0.4, true),
        ];
        let strict = threshold_for_precision(&scored, 1.0);
        let loose = threshold_for_precision(&scored, 0.6);
        assert!(strict >= loose, "strict {strict} loose {loose}");
        // The strict threshold admits only the clean prefix.
        let admitted = scored.iter().filter(|&&(s, _)| s > strict).count();
        assert_eq!(admitted, 2);
    }

    #[test]
    fn unreachable_target_falls_back_to_best_f1() {
        // Every selection has precision 0.5: targets above that are
        // unreachable.
        let scored = vec![(0.9f32, true), (0.9, false), (0.1, true), (0.1, false)];
        let t = threshold_for_precision(&scored, 0.99);
        assert!((0.0..=1.0).contains(&t));
        // Best-F1 point: admit everything (recall 1, precision 0.5).
        let admitted = scored.iter().filter(|&&(s, _)| s > t).count();
        assert_eq!(admitted, 4);
    }

    #[test]
    fn empty_input_defaults() {
        assert_eq!(threshold_for_precision(&[], 0.9), 0.5);
    }
}
