//! The uniform edge-classification interface.
//!
//! [`EdgeClassifier`] is the contract a serving layer (and the
//! evaluation drivers) program against: score a candidate hyponymy edge
//! `<parent, child>`. It lives here — next to [`HypoDetector`], its
//! primary implementation — rather than in the baselines crate, so that
//! downstream crates depend on the core surface instead of an
//! eval-harness crate defining the shared interface.

use crate::HypoDetector;
use taxo_core::{ConceptId, Vocabulary};

/// The uniform interface every method (the trained framework and all
/// baselines) exposes to expansion and evaluation drivers: classify a
/// candidate hyponymy edge `<parent, child>`.
///
/// `Send + Sync` is a supertrait so drivers can score candidate pairs
/// from several threads; every implementation is plain data (no interior
/// mutability), so the bound costs nothing.
pub trait EdgeClassifier: Send + Sync {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// Probability-like score in `[0, 1]` that the edge holds.
    fn score(&self, vocab: &Vocabulary, parent: ConceptId, child: ConceptId) -> f32;

    /// Binary decision (default: score > 0.5).
    fn predict(&self, vocab: &Vocabulary, parent: ConceptId, child: ConceptId) -> bool {
        self.score(vocab, parent, child) > 0.5
    }
}

/// The trained framework is itself an [`EdgeClassifier`] — no adapter
/// wrapper needed.
impl EdgeClassifier for HypoDetector {
    fn name(&self) -> &str {
        "Ours"
    }

    fn score(&self, vocab: &Vocabulary, parent: ConceptId, child: ConceptId) -> f32 {
        HypoDetector::score(self, vocab, parent, child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_safety_and_name() {
        fn takes_dyn(c: &dyn EdgeClassifier) -> &str {
            c.name()
        }
        // Compile-time: HypoDetector coerces to &dyn EdgeClassifier.
        fn _coerces(d: &HypoDetector) -> &dyn EdgeClassifier {
            d
        }
        struct Fixed;
        impl EdgeClassifier for Fixed {
            fn name(&self) -> &str {
                "Fixed"
            }
            fn score(&self, _: &Vocabulary, _: ConceptId, _: ConceptId) -> f32 {
                0.9
            }
        }
        assert_eq!(takes_dyn(&Fixed), "Fixed");
        let v = Vocabulary::new();
        assert!(Fixed.predict(&v, ConceptId(0), ConceptId(1)));
    }
}
