//! Human-readable expansion reports — the review artefact a taxonomy
//! curator inspects before merging an automated expansion into
//! production (the paper's deployment keeps "two and above taxonomists"
//! in the loop for evaluation; this is what they would read).

use crate::ExpansionResult;
use std::fmt::Write as _;
use taxo_core::{Taxonomy, Vocabulary};
use taxo_text::is_headword_edge;

/// Summary numbers of one expansion run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionSummary {
    pub relations_before: usize,
    pub relations_after: usize,
    pub attached: usize,
    pub pruned_redundant: usize,
    pub new_concepts: usize,
    /// Attached relations whose child name embeds the parent (headword).
    pub headword_attached: usize,
    /// Attached relations of the harder, non-headword kind.
    pub other_attached: usize,
    /// Depth before/after (level count).
    pub depth_before: usize,
    pub depth_after: usize,
}

/// Builds the summary for an expansion of `before`.
pub fn summarize(
    before: &Taxonomy,
    result: &ExpansionResult,
    vocab: &Vocabulary,
) -> ExpansionSummary {
    let surviving = result.surviving_edges();
    let headword_attached = surviving
        .iter()
        .filter(|e| is_headword_edge(vocab.name(e.parent), vocab.name(e.child)))
        .count();
    let new_concepts = result.expanded.node_count() - before.node_count();
    ExpansionSummary {
        relations_before: before.edge_count(),
        relations_after: result.expanded.edge_count(),
        attached: surviving.len(),
        pruned_redundant: result.pruned.len(),
        new_concepts,
        headword_attached,
        other_attached: surviving.len() - headword_attached,
        depth_before: before.depth(),
        depth_after: result.expanded.depth(),
    }
}

/// Renders a markdown review report: the summary plus the attached
/// relations grouped by parent (up to `max_parents` groups of
/// `max_children` children each).
pub fn render_markdown(
    before: &Taxonomy,
    result: &ExpansionResult,
    vocab: &Vocabulary,
    max_parents: usize,
    max_children: usize,
) -> String {
    let s = summarize(before, result, vocab);
    let mut out = String::new();
    let _ = writeln!(out, "# Taxonomy expansion report\n");
    let _ = writeln!(
        out,
        "- relations: **{} → {}** (+{} attached, {} pruned as redundant)",
        s.relations_before, s.relations_after, s.attached, s.pruned_redundant
    );
    let _ = writeln!(out, "- new concepts attached: **{}**", s.new_concepts);
    let _ = writeln!(
        out,
        "- attachment mix: {} headword / {} non-headword",
        s.headword_attached, s.other_attached
    );
    let _ = writeln!(out, "- depth: {} → {}\n", s.depth_before, s.depth_after);

    // Group attached edges by parent, busiest parents first.
    let mut by_parent: std::collections::HashMap<taxo_core::ConceptId, Vec<taxo_core::ConceptId>> =
        std::collections::HashMap::new();
    for e in result.surviving_edges() {
        by_parent.entry(e.parent).or_default().push(e.child);
    }
    let mut groups: Vec<_> = by_parent.into_iter().collect();
    groups.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));

    let _ = writeln!(out, "## Attached relations\n");
    for (parent, mut children) in groups.iter().take(max_parents).cloned() {
        children.sort();
        let _ = writeln!(out, "### {}\n", vocab.name(parent));
        for c in children.iter().take(max_children) {
            let _ = writeln!(out, "- {}", vocab.name(*c));
        }
        if children.len() > max_children {
            let _ = writeln!(out, "- … and {} more", children.len() - max_children);
        }
        out.push('\n');
    }
    if groups.len() > max_parents {
        let _ = writeln!(
            out,
            "_… and {} more parents with attachments._",
            groups.len() - max_parents
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxo_core::Edge;

    fn fixture() -> (Taxonomy, ExpansionResult, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let food = vocab.intern("food");
        let bread = vocab.intern("breado");
        let rye = vocab.intern("rye breado");
        let toast = vocab.intern("toasti");
        let mut before = Taxonomy::new();
        before.add_edge(food, bread).unwrap();
        let mut expanded = before.clone();
        expanded.add_edge(bread, rye).unwrap();
        expanded.add_edge(bread, toast).unwrap();
        let result = ExpansionResult {
            expanded,
            added: vec![Edge::new(bread, rye), Edge::new(bread, toast)],
            pruned: vec![],
        };
        (before, result, vocab)
    }

    #[test]
    fn summary_counts_everything() {
        let (before, result, vocab) = fixture();
        let s = summarize(&before, &result, &vocab);
        assert_eq!(s.relations_before, 1);
        assert_eq!(s.relations_after, 3);
        assert_eq!(s.attached, 2);
        assert_eq!(s.new_concepts, 2);
        assert_eq!(s.headword_attached, 1); // "rye breado"
        assert_eq!(s.other_attached, 1); // "toasti"
        assert_eq!(s.depth_before, 2);
        assert_eq!(s.depth_after, 3);
        assert_eq!(s.pruned_redundant, 0);
    }

    #[test]
    fn markdown_mentions_groups_and_truncates() {
        let (before, result, vocab) = fixture();
        let md = render_markdown(&before, &result, &vocab, 10, 1);
        assert!(md.contains("# Taxonomy expansion report"));
        assert!(md.contains("**1 → 3**"));
        assert!(md.contains("### breado"));
        assert!(md.contains("and 1 more"), "{md}");
    }

    #[test]
    fn empty_expansion_reports_zero() {
        let (before, _, vocab) = fixture();
        let result = ExpansionResult {
            expanded: before.clone(),
            added: vec![],
            pruned: vec![],
        };
        let s = summarize(&before, &result, &vocab);
        assert_eq!(s.attached, 0);
        assert_eq!(s.new_concepts, 0);
        let md = render_markdown(&before, &result, &vocab, 5, 5);
        assert!(md.contains("+0 attached"));
    }
}
