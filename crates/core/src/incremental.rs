//! Continuous taxonomy maintenance — the deployment mode the paper
//! highlights as its "most remarkable advantage": the taxonomy keeps
//! updating "as user behavior information grows day by day".
//!
//! [`IncrementalExpander`] owns the current taxonomy and an accumulated
//! click-pair store; each call to [`IncrementalExpander::ingest`] merges
//! a new batch of click records (e.g. one day of logs), re-mines
//! candidates, and expands from the *current* state, so concepts attached
//! yesterday can receive children today.

use crate::{expand_taxonomy, CandidatePair, ExpansionConfig, ExpansionResult, HypoDetector};
use std::collections::HashMap;
use taxo_core::{ConceptId, Edge, Taxonomy, Vocabulary};
use taxo_obs::{counter, gauge, span};
use taxo_synth::ClickRecord;
use taxo_text::ConceptMatcher;

/// A running expansion session over a stream of click-log batches.
pub struct IncrementalExpander {
    detector: HypoDetector,
    taxonomy: Taxonomy,
    /// Accumulated (query, item) click counts across all ingested batches.
    pair_counts: HashMap<(ConceptId, ConceptId), u64>,
    cfg: ExpansionConfig,
    batches: usize,
}

/// The complete durable state of a session — everything
/// [`IncrementalExpander::ingest`] mutates, and nothing it doesn't (the
/// detector and config are frozen at training time and travel
/// separately). Extracted with [`IncrementalExpander::state`] for
/// snapshot persistence and fed back through
/// [`IncrementalExpander::restore`] during crash recovery.
#[derive(Debug, Clone)]
pub struct ExpanderState {
    /// The maintained taxonomy.
    pub taxonomy: Taxonomy,
    /// The accumulated candidate store, sorted by (query, item).
    pub pairs: Vec<CandidatePair>,
    /// Batches ingested so far.
    pub batches: usize,
}

/// What one ingested batch changed.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Batch sequence number (1-based).
    pub batch: usize,
    /// Distinct candidate pairs known after this batch.
    pub known_pairs: usize,
    /// Relations newly attached by this batch.
    pub attached: Vec<Edge>,
    /// Total relations in the maintained taxonomy afterwards.
    pub total_relations: usize,
}

impl IncrementalExpander {
    /// Starts a session from a trained detector and the current taxonomy.
    pub fn new(detector: HypoDetector, initial: Taxonomy, cfg: ExpansionConfig) -> Self {
        IncrementalExpander {
            detector,
            taxonomy: initial,
            pair_counts: HashMap::new(),
            cfg,
            batches: 0,
        }
    }

    /// Like [`IncrementalExpander::new`], but seeds the candidate store
    /// with already-mined pairs (e.g. the construction-time pairs of a
    /// [`crate::TrainedPipeline`]), so the first snapshot a serving layer
    /// extracts already has candidates to score.
    pub fn with_pairs(
        detector: HypoDetector,
        initial: Taxonomy,
        pairs: &[CandidatePair],
        cfg: ExpansionConfig,
    ) -> Self {
        let mut session = IncrementalExpander::new(detector, initial, cfg);
        for p in pairs {
            *session.pair_counts.entry((p.query, p.item)).or_insert(0) += p.clicks;
        }
        session
    }

    /// Merges one batch of click records, re-runs top-down expansion from
    /// the current taxonomy, and adopts the result.
    pub fn ingest(&mut self, vocab: &Vocabulary, records: &[ClickRecord]) -> IngestReport {
        let _g = span!("incremental.ingest");
        self.batches += 1;
        counter!("incremental.batches").inc();
        counter!("incremental.records").add(records.len() as u64);
        let matcher = ConceptMatcher::new(vocab);
        for r in records {
            let Some(item) = matcher.identify(&r.item_text) else {
                continue;
            };
            if item == r.query {
                continue;
            }
            *self.pair_counts.entry((r.query, item)).or_insert(0) += r.count;
        }
        let pairs = self.candidate_pairs();

        let result: ExpansionResult =
            expand_taxonomy(&self.detector, vocab, &self.taxonomy, &pairs, &self.cfg);
        let attached = result.surviving_edges();
        self.taxonomy = result.expanded;
        counter!("incremental.attached").add(attached.len() as u64);
        gauge!("incremental.known_pairs").set(pairs.len() as i64);
        gauge!("incremental.total_relations").set(self.taxonomy.edge_count() as i64);
        IngestReport {
            batch: self.batches,
            known_pairs: pairs.len(),
            attached,
            total_relations: self.taxonomy.edge_count(),
        }
    }

    /// The maintained taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The accumulated candidate store as a deterministically ordered
    /// pair list (sorted by query then item) — the snapshot-extraction
    /// surface a serving layer freezes after each ingest.
    pub fn candidate_pairs(&self) -> Vec<CandidatePair> {
        let mut pairs: Vec<CandidatePair> = self
            .pair_counts
            .iter()
            .map(|(&(query, item), &clicks)| CandidatePair {
                query,
                item,
                clicks,
            })
            .collect();
        pairs.sort_by_key(|p| (p.query, p.item));
        pairs
    }

    /// The expansion configuration each ingest expands under.
    pub fn expansion_config(&self) -> &ExpansionConfig {
        &self.cfg
    }

    /// The trained detector in use.
    pub fn detector(&self) -> &HypoDetector {
        &self.detector
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Extracts the session's durable state (see [`ExpanderState`]).
    pub fn state(&self) -> ExpanderState {
        ExpanderState {
            taxonomy: self.taxonomy.clone(),
            pairs: self.candidate_pairs(),
            batches: self.batches,
        }
    }

    /// Rebuilds a session from a previously extracted (or deserialized)
    /// state plus the frozen detector and config it was running under.
    ///
    /// A restored session is behaviorally identical to the original:
    /// scoring consults only the detector, and expansion consults the
    /// taxonomy as an edge set and the pair store as a sorted list, so
    /// neither depends on the in-memory insertion order lost and
    /// recreated by the disk round trip.
    pub fn restore(detector: HypoDetector, cfg: ExpansionConfig, state: ExpanderState) -> Self {
        let mut pair_counts = HashMap::with_capacity(state.pairs.len());
        for p in &state.pairs {
            *pair_counts.entry((p.query, p.item)).or_insert(0) += p.clicks;
        }
        IncrementalExpander {
            detector,
            taxonomy: state.taxonomy,
            pair_counts,
            cfg,
            batches: state.batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        construct_graph, generate_dataset, DatasetConfig, DetectorConfig, RelationalConfig,
        RelationalModel, StructuralConfig, StructuralModel,
    };
    use taxo_graph::WeightScheme;
    use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};

    fn trained_world() -> (World, HypoDetector, ClickLog) {
        let world = World::generate(&WorldConfig {
            target_nodes: 150,
            ..WorldConfig::tiny(121)
        });
        let log = ClickLog::generate(
            &world,
            &ClickConfig {
                n_events: 8_000,
                ..ClickConfig::tiny(121)
            },
        );
        let ugc = UgcCorpus::generate(
            &world,
            &UgcConfig {
                n_sentences: 1_500,
                ..UgcConfig::tiny(121)
            },
        );
        let built = construct_graph(
            &world.existing,
            &world.vocab,
            &log.records,
            WeightScheme::IfIqf,
        );
        let ds = generate_dataset(
            &world.existing,
            &world.vocab,
            &built.pairs,
            &DatasetConfig::default(),
        );
        let (rel, _) =
            RelationalModel::pretrain(&world.vocab, &ugc.sentences, &RelationalConfig::tiny(121));
        let st = StructuralModel::build(
            &world.existing,
            &world.vocab,
            &built.pairs,
            Some(&rel),
            &StructuralConfig::tiny(121),
        );
        let mut det = HypoDetector::new(Some(rel), Some(st), &DetectorConfig::tiny(121));
        det.train_with_val(&world.vocab, &ds.train, &ds.val, &DetectorConfig::tiny(121));
        (world, det, log)
    }

    #[test]
    fn batches_accumulate_and_taxonomy_grows_monotonically() {
        let (world, det, log) = trained_world();
        let mut session = IncrementalExpander::new(
            det,
            world.existing.clone(),
            ExpansionConfig {
                threshold: 0.6,
                ..Default::default()
            },
        );
        let mid = log.records.len() / 2;
        let r1 = session.ingest(&world.vocab, &log.records[..mid]);
        let after_first = session.taxonomy().edge_count();
        let r2 = session.ingest(&world.vocab, &log.records[mid..]);
        assert_eq!(r1.batch, 1);
        assert_eq!(r2.batch, 2);
        assert!(r2.known_pairs >= r1.known_pairs, "pair store accumulates");
        assert!(
            session.taxonomy().edge_count() >= after_first,
            "taxonomy never shrinks"
        );
        assert_eq!(r2.total_relations, session.taxonomy().edge_count());
        // Every original relation survives both rounds.
        for e in world.existing.edges() {
            assert!(session.taxonomy().contains_edge(e.parent, e.child));
        }
    }

    #[test]
    fn multi_batch_stream_is_monotone() {
        let (world, det, log) = trained_world();
        let mut session = IncrementalExpander::new(
            det,
            world.existing.clone(),
            ExpansionConfig::builder().threshold(0.6).build().unwrap(),
        );
        // Four "days" of logs, ingested in order.
        let chunk = (log.records.len() / 4).max(1);
        let mut reports: Vec<IngestReport> = Vec::new();
        for (day, batch) in log.records.chunks(chunk).take(4).enumerate() {
            let report = session.ingest(&world.vocab, batch);
            assert_eq!(report.batch, day + 1);
            reports.push(report);
        }
        assert!(reports.len() >= 2, "need at least two batches");
        // The pair store and the maintained taxonomy never shrink across
        // the stream, and every report's totals agree with the session.
        for pair in reports.windows(2) {
            assert!(
                pair[1].known_pairs >= pair[0].known_pairs,
                "known_pairs must be monotone: {} then {}",
                pair[0].known_pairs,
                pair[1].known_pairs
            );
            assert!(
                pair[1].total_relations >= pair[0].total_relations,
                "total_relations must be monotone: {} then {}",
                pair[0].total_relations,
                pair[1].total_relations
            );
        }
        let last = reports.last().unwrap();
        assert_eq!(last.batch, session.batches());
        assert_eq!(last.total_relations, session.taxonomy().edge_count());
        // Attached edges reported per batch all live in the final state.
        for report in &reports {
            for e in &report.attached {
                assert!(session.taxonomy().contains_edge(e.parent, e.child));
            }
        }
    }

    #[test]
    fn state_restore_round_trip_is_behaviorally_identical() {
        let (world, det, log) = trained_world();
        let cfg = ExpansionConfig {
            threshold: 0.6,
            ..Default::default()
        };
        let mut live = IncrementalExpander::new(det.clone(), world.existing.clone(), cfg.clone());
        let mid = log.records.len() / 2;
        live.ingest(&world.vocab, &log.records[..mid]);

        let mut restored = IncrementalExpander::restore(det, cfg, live.state());
        assert_eq!(restored.batches(), live.batches());
        assert_eq!(restored.candidate_pairs(), live.candidate_pairs());
        assert_eq!(
            restored.taxonomy().edge_count(),
            live.taxonomy().edge_count()
        );
        for e in live.taxonomy().edges() {
            assert!(restored.taxonomy().contains_edge(e.parent, e.child));
        }

        // Ingesting the same next batch produces identical outcomes:
        // the disk round trip loses only insertion order, which neither
        // expansion nor reporting observes.
        let ra = live.ingest(&world.vocab, &log.records[mid..]);
        let rb = restored.ingest(&world.vocab, &log.records[mid..]);
        assert_eq!(ra.batch, rb.batch);
        assert_eq!(ra.known_pairs, rb.known_pairs);
        assert_eq!(ra.attached, rb.attached);
        assert_eq!(ra.total_relations, rb.total_relations);
        assert_eq!(live.candidate_pairs(), restored.candidate_pairs());
    }

    #[test]
    fn empty_batch_is_a_fixpoint() {
        let (world, det, log) = trained_world();
        let mut session =
            IncrementalExpander::new(det, world.existing.clone(), ExpansionConfig::default());
        session.ingest(&world.vocab, &log.records);
        let before = session.taxonomy().edge_count();
        let report = session.ingest(&world.vocab, &[]);
        assert_eq!(session.taxonomy().edge_count(), before);
        assert!(
            report.attached.is_empty(),
            "no new data, no new attachments: {:?}",
            report.attached
        );
    }
}
