//! Proof of the warm-arena contract: once a [`taxo_expand::BatchScorer`]
//! has seen its steady-state shapes, a scoring pass performs **zero heap
//! allocations** — the whole encoder forward, feature assembly, and MLP
//! classification run out of reused buffers.
//!
//! The binary holds exactly one test so the counting `#[global_allocator]`
//! only ever observes this test's thread plus a parked harness thread;
//! the armed window contains pure compute (no printing, no spawning, and
//! `TAXO_THREADS=1` so `par_map` never starts scoped workers).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_batch_scoring_performs_zero_heap_allocations() {
    taxo_nn::parallel::set_threads(1);

    use std::sync::Arc;

    use taxo_expand::{
        construct_graph, BatchScorer, DetectorConfig, HypoDetector, QuantizedDetector,
        RelationalConfig, RelationalModel, StructuralConfig, StructuralModel,
    };
    use taxo_graph::WeightScheme;
    use taxo_synth::{ClickConfig, ClickLog, World, WorldConfig};

    let world = World::generate(&WorldConfig::tiny(23));
    let log = ClickLog::generate(&world, &ClickConfig::tiny(23));
    let built = construct_graph(
        &world.existing,
        &world.vocab,
        &log.records,
        WeightScheme::IfIqf,
    );
    let relational = RelationalModel::vanilla(&world.vocab, &[], &RelationalConfig::tiny(23));
    let structural = StructuralModel::build(
        &world.existing,
        &world.vocab,
        &built.pairs,
        Some(&relational),
        &StructuralConfig::tiny(23),
    );
    let detector = HypoDetector::new(
        Some(relational),
        Some(structural),
        &DetectorConfig::tiny(23),
    );
    let pairs: Vec<_> = built
        .pairs
        .iter()
        .take(24)
        .map(|p| (p.query, p.item))
        .collect();
    assert!(pairs.len() >= 8, "fixture mined too few candidate pairs");

    // Warm-up: the first pass sizes every buffer to the largest bucket
    // shape, the second confirms steady state before arming.
    let mut scorer = BatchScorer::new();
    let mut out = Vec::new();
    scorer.score_into(&detector, &world.vocab, &pairs, &mut out);
    let reference: Vec<u32> = out.iter().map(|s| s.to_bits()).collect();
    scorer.score_into(&detector, &world.vocab, &pairs, &mut out);

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..5 {
        scorer.score_into(&detector, &world.vocab, &pairs, &mut out);
    }
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "warm scoring passes must not touch the heap, saw {allocs} allocations"
    );
    // And the armed passes still produced the canonical bits.
    assert_eq!(
        out.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        reference
    );

    // The int8 tier runs through the same arena and must uphold the same
    // contract: after warm-up, quant scoring never touches the heap.
    let quant = QuantizedDetector::from_detector(Arc::new(detector));
    quant.score_into(&mut scorer, &world.vocab, &pairs, &mut out);
    let quant_reference: Vec<u32> = out.iter().map(|s| s.to_bits()).collect();
    quant.score_into(&mut scorer, &world.vocab, &pairs, &mut out);

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..5 {
        quant.score_into(&mut scorer, &world.vocab, &pairs, &mut out);
    }
    ARMED.store(false, Ordering::SeqCst);

    let quant_allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        quant_allocs, 0,
        "warm quant scoring passes must not touch the heap, saw {quant_allocs} allocations"
    );
    assert_eq!(
        out.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        quant_reference
    );
}
