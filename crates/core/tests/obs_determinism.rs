//! Regression test for the observability determinism contract: with
//! metrics recording always on, the counter / gauge / histogram portion
//! of the snapshot must be **identical** at any thread count — only span
//! wall-times (excluded by `MetricsSnapshot::deterministic`) may differ.
//!
//! One `#[test]` only: both the global thread-count override and the
//! global metric registry reset must not race with other tests in this
//! binary.

use taxo_expand::obs;
use taxo_expand::{
    construct_graph, expand_taxonomy, generate_dataset, DatasetConfig, DetectorConfig,
    ExpansionConfig, HypoDetector, RelationalConfig, RelationalModel, StructuralConfig,
    StructuralModel,
};
use taxo_graph::WeightScheme;
use taxo_nn::parallel;
use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};

/// Runs the instrumented stack end to end on a tiny seeded world.
fn run_fixture() {
    let world = World::generate(&WorldConfig::tiny(92));
    let log = ClickLog::generate(&world, &ClickConfig::tiny(92));
    let ugc = UgcCorpus::generate(&world, &UgcConfig::tiny(92));
    let built = construct_graph(
        &world.existing,
        &world.vocab,
        &log.records,
        WeightScheme::IfIqf,
    );
    let dataset = generate_dataset(
        &world.existing,
        &world.vocab,
        &built.pairs,
        &DatasetConfig::default(),
    );
    let (relational, _) =
        RelationalModel::pretrain(&world.vocab, &ugc.sentences, &RelationalConfig::tiny(92));
    let structural = StructuralModel::build(
        &world.existing,
        &world.vocab,
        &built.pairs,
        Some(&relational),
        &StructuralConfig::tiny(92),
    );
    let mut detector = HypoDetector::new(
        Some(relational),
        Some(structural),
        &DetectorConfig::tiny(92),
    );
    detector.train(&world.vocab, &dataset.train, &DetectorConfig::tiny(92));
    expand_taxonomy(
        &detector,
        &world.vocab,
        &world.existing,
        &built.pairs,
        &ExpansionConfig::default(),
    );
}

#[test]
fn metrics_are_thread_count_invariant() {
    parallel::set_threads(1);
    obs::reset();
    run_fixture();
    let sequential = obs::snapshot().deterministic();

    parallel::set_threads(8);
    obs::reset();
    run_fixture();
    let threaded = obs::snapshot().deterministic();
    parallel::set_threads(1);

    // The instrumentation actually fired.
    for name in [
        "construct.pairs_mined",
        "train.mlm.epochs",
        "train.detector.epochs",
        "expand.queries_visited",
        "nn.optim.steps",
    ] {
        assert!(
            sequential.counter(name) > 0,
            "counter {name} never recorded; snapshot: {sequential:?}"
        );
    }
    assert!(
        !sequential.histograms.is_empty(),
        "expected at least one histogram"
    );
    // Spans are stripped by `deterministic()`; what remains must be
    // bit-identical across thread counts.
    assert!(sequential.spans.is_empty() && threaded.spans.is_empty());
    assert_eq!(
        sequential, threaded,
        "counters/gauges/histograms diverged between 1 and 8 threads"
    );
}
