//! Builder-validation coverage: every invalid field a
//! [`PipelineConfig::builder`] or [`ExpansionConfig::builder`] can be
//! handed must come back as [`TaxoError::InvalidConfig`] whose `field`
//! names the offending knob — so a misconfigured run fails at build
//! time with an actionable message instead of silently mistraining.

use taxo_core::TaxoError;
use taxo_expand::{DetectorConfig, ExpansionConfig, PipelineConfig};

/// Asserts the result is `InvalidConfig` and that both the structured
/// `field` and the rendered `Display` message name the expected field.
fn assert_names_field<T: std::fmt::Debug>(result: Result<T, TaxoError>, expected_field: &str) {
    match result {
        Err(TaxoError::InvalidConfig { field, message }) => {
            assert_eq!(
                field, expected_field,
                "wrong field blamed (message: {message})"
            );
            let err = TaxoError::InvalidConfig { field, message };
            assert!(
                err.to_string().contains(expected_field),
                "Display output {:?} does not name {expected_field}",
                err.to_string()
            );
        }
        Err(other) => panic!("expected InvalidConfig for {expected_field}, got {other:?}"),
        Ok(v) => panic!("expected InvalidConfig for {expected_field}, got Ok({v:?})"),
    }
}

#[test]
fn default_builders_build_clean() {
    PipelineConfig::builder()
        .build()
        .expect("default pipeline config validates");
    ExpansionConfig::builder()
        .build()
        .expect("default expansion config validates");
}

#[test]
fn no_representation_enabled_is_rejected() {
    assert_names_field(
        PipelineConfig::builder()
            .use_relational(false)
            .use_structural(false)
            .build(),
        "use_relational/use_structural",
    );
}

#[test]
fn one_representation_suffices() {
    PipelineConfig::builder()
        .use_relational(false)
        .build()
        .expect("structural-only is a valid ablation");
    PipelineConfig::builder()
        .use_structural(false)
        .build()
        .expect("relational-only is a valid ablation");
}

#[test]
fn zero_detector_epochs_is_rejected() {
    assert_names_field(
        PipelineConfig::builder().detector_epochs(0).build(),
        "detector.epochs",
    );
}

#[test]
fn zero_detector_batch_is_rejected() {
    let detector = DetectorConfig {
        batch: 0,
        ..Default::default()
    };
    assert_names_field(
        PipelineConfig::builder().detector(detector).build(),
        "detector.batch",
    );
}

#[test]
fn bad_learning_rates_are_rejected() {
    for lr in [0.0, -0.01, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let detector = DetectorConfig {
            lr,
            ..Default::default()
        };
        assert_names_field(
            PipelineConfig::builder().detector(detector).build(),
            "detector.lr",
        );
    }
}

#[test]
fn out_of_range_input_dropout_is_rejected() {
    // Dropout of exactly 1.0 zeroes every feature — rejected along with
    // anything negative or non-finite. 0.0 (disabled) stays legal.
    for input_dropout in [1.0, 1.5, -0.1, f32::NAN] {
        let detector = DetectorConfig {
            input_dropout,
            ..Default::default()
        };
        assert_names_field(
            PipelineConfig::builder().detector(detector).build(),
            "detector.input_dropout",
        );
    }
    let detector = DetectorConfig {
        input_dropout: 0.0,
        ..Default::default()
    };
    PipelineConfig::builder()
        .detector(detector)
        .build()
        .expect("disabled dropout is valid");
}

#[test]
fn zero_pretrain_epochs_only_matters_when_pretraining() {
    assert_names_field(
        PipelineConfig::builder().pretrain_epochs(0).build(),
        "relational.pretrain_epochs",
    );
    PipelineConfig::builder()
        .pretrain_epochs(0)
        .pretrain_relational(false)
        .build()
        .expect("pretrain_epochs is ignored when pretraining is off");
}

#[test]
fn out_of_range_threshold_is_rejected() {
    for threshold in [-0.1, 1.5, f32::NAN, f32::INFINITY] {
        assert_names_field(
            ExpansionConfig::builder().threshold(threshold).build(),
            "expansion.threshold",
        );
    }
    // Both closed endpoints are legal ("attach everything" / "attach
    // only certainties").
    for threshold in [0.0, 1.0] {
        ExpansionConfig::builder()
            .threshold(threshold)
            .build()
            .expect("closed-interval endpoints are valid");
    }
}

#[test]
fn zero_candidate_cap_is_rejected() {
    assert_names_field(
        ExpansionConfig::builder()
            .max_candidates_per_query(0)
            .build(),
        "expansion.max_candidates_per_query",
    );
}

#[test]
fn pipeline_validation_covers_nested_expansion_config() {
    // PipelineConfig::validate() delegates to the embedded
    // ExpansionConfig, so a bad nested threshold surfaces with the same
    // field name at the top level.
    let expansion = ExpansionConfig {
        threshold: 2.0,
        ..Default::default()
    };
    assert_names_field(
        PipelineConfig::builder().expansion(expansion).build(),
        "expansion.threshold",
    );
}
