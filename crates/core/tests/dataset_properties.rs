//! Property-based tests for self-supervised dataset generation.

use proptest::prelude::*;
use taxo_expand::{construct_graph, generate_dataset, DatasetConfig, PairKind, Strategy};
use taxo_graph::WeightScheme;
use taxo_synth::{ClickConfig, ClickLog, World, WorldConfig};

fn build(seed: u64, strategy: Strategy) -> (World, taxo_expand::Dataset) {
    let world = World::generate(&WorldConfig::tiny(seed));
    let log = ClickLog::generate(&world, &ClickConfig::tiny(seed));
    let built = construct_graph(
        &world.existing,
        &world.vocab,
        &log.records,
        WeightScheme::IfIqf,
    );
    let ds = generate_dataset(
        &world.existing,
        &world.vocab,
        &built.pairs,
        &DatasetConfig {
            strategy,
            seed,
            ..Default::default()
        },
    );
    (world, ds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn balance_invariants_hold_for_any_seed(seed in 0u64..300) {
        let (world, ds) = build(seed, Strategy::Adaptive);
        let s = ds.stats();
        // Positives and negatives are exactly 1:1.
        prop_assert_eq!(s.positives, s.negatives);
        // Shuffle and replace differ by at most the fallback slack.
        prop_assert!(s.shuffle.abs_diff(s.replace) <= s.negatives / 2 + 1);
        // Every positive is a real edge, every negative is not.
        for p in ds.all() {
            prop_assert_eq!(p.label, world.existing.contains_edge(p.parent, p.child));
            prop_assert_eq!(p.label, p.kind.is_positive());
        }
        // Split proportions are 60/20/20 within rounding.
        let n = ds.len();
        prop_assert!(ds.train.len().abs_diff(n * 6 / 10) <= 1);
        prop_assert!(ds.val.len().abs_diff(n / 5) <= 2);
    }

    #[test]
    fn shuffle_negatives_are_reversed_true_edges(seed in 0u64..300) {
        let (world, ds) = build(seed, Strategy::Adaptive);
        for p in ds.all() {
            if p.kind == PairKind::NegativeShuffle {
                prop_assert!(
                    world.existing.contains_edge(p.child, p.parent),
                    "shuffle negative must be a reversed edge"
                );
            }
        }
    }

    #[test]
    fn previous_strategy_contains_every_edge(seed in 0u64..300) {
        let (world, ds) = build(seed, Strategy::Previous);
        let positives: std::collections::HashSet<(u32, u32)> = ds
            .all()
            .filter(|p| p.label)
            .map(|p| (p.parent.0, p.child.0))
            .collect();
        for e in world.existing.edges() {
            prop_assert!(positives.contains(&(e.parent.0, e.child.0)));
        }
    }

    #[test]
    fn adaptive_positives_are_subset_of_previous(seed in 0u64..300) {
        let (_, adaptive) = build(seed, Strategy::Adaptive);
        let (_, previous) = build(seed, Strategy::Previous);
        let prev_set: std::collections::HashSet<(u32, u32)> = previous
            .all()
            .filter(|p| p.label)
            .map(|p| (p.parent.0, p.child.0))
            .collect();
        for p in adaptive.all().filter(|p| p.label) {
            prop_assert!(prev_set.contains(&(p.parent.0, p.child.0)));
        }
        prop_assert!(adaptive.stats().positives <= previous.stats().positives);
    }
}
