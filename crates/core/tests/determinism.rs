//! Regression test for the parallel-execution determinism contract:
//! every training and inference path must produce **bitwise identical**
//! results at any thread count (`TAXO_THREADS=1` vs many threads).
//!
//! The whole comparison lives in one `#[test]` so the global thread-count
//! override never races with another test in this binary.

use std::sync::Arc;

use taxo_expand::{
    construct_graph, expand_taxonomy, generate_dataset, DatasetConfig, DetectorConfig,
    ExpansionConfig, HypoDetector, QuantizedDetector, RelationalConfig, RelationalModel,
    StructuralConfig, StructuralModel,
};
use taxo_graph::WeightScheme;
use taxo_nn::parallel;
use taxo_synth::{ClickConfig, ClickLog, UgcConfig, UgcCorpus, World, WorldConfig};

/// Runs the full training stack (MLM pretraining, structural build with
/// contrastive GNN pretraining, detector training, expansion) on a tiny
/// seeded world and fingerprints every float as raw bits.
fn run_fixture() -> Vec<u32> {
    let world = World::generate(&WorldConfig::tiny(91));
    let log = ClickLog::generate(&world, &ClickConfig::tiny(91));
    let ugc = UgcCorpus::generate(&world, &UgcConfig::tiny(91));
    let built = construct_graph(
        &world.existing,
        &world.vocab,
        &log.records,
        WeightScheme::IfIqf,
    );
    let dataset = generate_dataset(
        &world.existing,
        &world.vocab,
        &built.pairs,
        &DatasetConfig::default(),
    );
    let (relational, mlm_losses) =
        RelationalModel::pretrain(&world.vocab, &ugc.sentences, &RelationalConfig::tiny(91));
    let structural = StructuralModel::build(
        &world.existing,
        &world.vocab,
        &built.pairs,
        Some(&relational),
        &StructuralConfig::tiny(91),
    );
    let mut detector = HypoDetector::new(
        Some(relational),
        Some(structural),
        &DetectorConfig::tiny(91),
    );
    let train_losses = detector.train(&world.vocab, &dataset.train, &DetectorConfig::tiny(91));

    let mut bits = Vec::new();
    bits.extend(mlm_losses.iter().map(|l| l.to_bits()));
    bits.extend(train_losses.iter().map(|l| l.to_bits()));
    for p in dataset.test.iter().take(32) {
        bits.push(detector.score(&world.vocab, p.parent, p.child).to_bits());
    }

    // The batched inference fast path must agree with the scalar path
    // bit for bit — cold and warm — at every thread count.
    let pairs: Vec<_> = dataset
        .test
        .iter()
        .take(32)
        .map(|p| (p.parent, p.child))
        .collect();
    let pool = taxo_expand::ScratchPool::new();
    for round in 0..2 {
        let batched = detector.score_batch(&world.vocab, &pairs, &pool);
        for (p, s) in pairs.iter().zip(&batched) {
            assert_eq!(
                s.to_bits(),
                detector.score(&world.vocab, p.0, p.1).to_bits(),
                "batched round {round} diverged from scalar scoring on {p:?}"
            );
            bits.push(s.to_bits());
        }
    }
    // The int8 serving tier must be exactly as deterministic as the f32
    // tier: quantization is a pure function of the trained weights and
    // quant scoring shares the canonical lane order, so its scores
    // fingerprint identically across thread counts too.
    let quant = QuantizedDetector::from_detector(Arc::new(detector.clone()));
    let mut scorer = taxo_expand::BatchScorer::new();
    let mut quant_scores = Vec::new();
    quant.score_into(&mut scorer, &world.vocab, &pairs, &mut quant_scores);
    for (p, s) in pairs.iter().zip(&quant_scores) {
        assert_eq!(
            s.to_bits(),
            quant.score(&world.vocab, p.0, p.1).to_bits(),
            "quant batch diverged from quant scalar scoring on {p:?}"
        );
        bits.push(s.to_bits());
    }

    let result = expand_taxonomy(
        &detector,
        &world.vocab,
        &world.existing,
        &built.pairs,
        &ExpansionConfig::default(),
    );
    for e in &result.added {
        bits.push(e.parent.0);
        bits.push(e.child.0);
    }
    bits
}

#[test]
fn training_is_thread_count_invariant() {
    parallel::set_threads(1);
    let sequential = run_fixture();
    assert!(
        sequential.len() > 10,
        "fixture produced too little signal: {} values",
        sequential.len()
    );

    parallel::set_threads(8);
    let threaded = run_fixture();
    parallel::set_threads(1);

    assert_eq!(
        sequential.len(),
        threaded.len(),
        "loss/score/edge counts diverged between thread counts"
    );
    for (i, (s, t)) in sequential.iter().zip(&threaded).enumerate() {
        assert_eq!(
            s,
            t,
            "value {i} differs: {:?} (1 thread) vs {:?} (8 threads)",
            f32::from_bits(*s),
            f32::from_bits(*t)
        );
    }
}
